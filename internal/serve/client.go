package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lowlat/internal/obs"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// Client is a typed client for a running daemon, mirroring the server's
// endpoints one method each. The zero HTTPClient means
// http.DefaultClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (timeouts, test servers).
	HTTPClient *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// StatusError is a non-2xx daemon response: the HTTP status code plus the
// server's error message. Callers distinguish backpressure
// (http.StatusTooManyRequests) from hard failures through Code.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a 2xx JSON body into out. When the
// request context carries a trace, its ID travels on X-Request-ID, so
// the downstream daemon logs the same request ID as this hop's caller.
func (c *Client) do(req *http.Request, out any) error {
	if id := obs.RequestIDFrom(req.Context()); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		return fmt.Errorf("serve: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(bytes.TrimSpace(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return c.do(req, out)
}

// filterValues renders a sweep.Filter as the query parameters the server
// parses back with the same presence semantics.
func filterValues(f sweep.Filter) url.Values {
	q := url.Values{}
	if f.Net != "" {
		q.Set("net", f.Net)
	}
	if f.Class != "" {
		q.Set("class", f.Class)
	}
	if f.Scheme != "" {
		q.Set("scheme", f.Scheme)
	}
	if f.Seed != nil {
		q.Set("seed", strconv.FormatInt(*f.Seed, 10))
	}
	if f.Headroom != nil {
		q.Set("headroom", strconv.FormatFloat(*f.Headroom, 'g', -1, 64))
	}
	return q
}

// Query lists stored cells matching the filter.
func (c *Client) Query(ctx context.Context, f sweep.Filter) ([]store.Result, error) {
	var out QueryResponse
	if err := c.get(ctx, "/v1/query", filterValues(f), &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Cell looks one cell up by its canonical key string.
func (c *Client) Cell(ctx context.Context, key string) (store.Result, error) {
	q := url.Values{}
	q.Set("key", key)
	var out CellResponse
	if err := c.get(ctx, "/v1/cell", q, &out); err != nil {
		return store.Result{}, err
	}
	return out.Result, nil
}

// Summary fetches the per-class CDF aggregate for the filter slice.
// points <= 0 takes the server default.
func (c *Client) Summary(ctx context.Context, f sweep.Filter, points int) (*Summary, error) {
	q := filterValues(f)
	if points > 0 {
		q.Set("points", strconv.Itoa(points))
	}
	var out Summary
	if err := c.get(ctx, "/v1/summary", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Place asks the daemon for one cell, computing it if no run has stored
// it yet. A *StatusError with Code 429 means the daemon's computation
// limit is reached — retry later.
func (c *Client) Place(ctx context.Context, preq PlaceRequest) (*PlaceResponse, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/place", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var out PlaceResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Replicate pushes one already-computed cell to the daemon in its
// canonical wire form — the write path cluster replication and healing
// ride. A 403 StatusError means the daemon's backend accepts no writes.
func (c *Client) Replicate(ctx context.Context, r store.Result) error {
	body, err := store.MarshalResult(r)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, nil)
}

// Digest fetches the daemon's key inventory summary; withKeys asks for
// the full canonical key list too.
func (c *Client) Digest(ctx context.Context, withKeys bool) (*DigestResponse, error) {
	q := url.Values{}
	if withKeys {
		q.Set("keys", "1")
	}
	var out DigestResponse
	if err := c.get(ctx, "/v1/digest", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil, nil)
}

// HealthReport fetches the daemon's readiness evaluation — SLO states,
// burn rates, down replicas. A critical daemon answers 503 carrying the
// same JSON body; that decodes into a report here rather than an error,
// so callers read Status instead of branching on the status code.
func (c *Client) HealthReport(ctx context.Context) (*HealthReport, error) {
	var out HealthReport
	if err := c.get(ctx, "/v1/health", nil, &out); err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable &&
			json.Unmarshal([]byte(se.Message), &out) == nil && out.Status != "" {
			return &out, nil
		}
		return nil, err
	}
	return &out, nil
}

// Events fetches the daemon's state-transition journal after the cursor.
// limit <= 0 asks for everything retained.
func (c *Client) Events(ctx context.Context, since int64, limit int) (*EventsResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatInt(since, 10))
	}
	if limit < 0 {
		limit = 0
	}
	q.Set("limit", strconv.Itoa(limit))
	var out EventsResponse
	if err := c.get(ctx, "/v1/events", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Watch subscribes to the daemon's /v1/watch stream, invoking fn for
// each snapshot until ctx ends, fn returns an error, or the stream
// breaks. interval <= 0 takes the server's default period. A cancelled
// context reads as a clean stop (nil).
func (c *Client) Watch(ctx context.Context, interval time.Duration, fn func(WatchEvent) error) error {
	u := c.BaseURL + "/v1/watch"
	if interval > 0 {
		q := url.Values{}
		q.Set("interval", interval.String())
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(body))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // event: lines, keepalives, blank separators
		}
		var ev WatchEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("serve: decode watch event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("serve: watch stream: %w", err)
	}
	return nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.get(ctx, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
