package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"lowlat/internal/obs"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// Client is a typed client for a running daemon, mirroring the server's
// endpoints one method each. The zero HTTPClient means
// http.DefaultClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (timeouts, test servers).
	HTTPClient *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// StatusError is a non-2xx daemon response: the HTTP status code plus the
// server's error message. Callers distinguish backpressure
// (http.StatusTooManyRequests) from hard failures through Code.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a 2xx JSON body into out. When the
// request context carries a trace, its ID travels on X-Request-ID, so
// the downstream daemon logs the same request ID as this hop's caller.
func (c *Client) do(req *http.Request, out any) error {
	if id := obs.RequestIDFrom(req.Context()); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		return fmt.Errorf("serve: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(bytes.TrimSpace(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return c.do(req, out)
}

// filterValues renders a sweep.Filter as the query parameters the server
// parses back with the same presence semantics.
func filterValues(f sweep.Filter) url.Values {
	q := url.Values{}
	if f.Net != "" {
		q.Set("net", f.Net)
	}
	if f.Class != "" {
		q.Set("class", f.Class)
	}
	if f.Scheme != "" {
		q.Set("scheme", f.Scheme)
	}
	if f.Seed != nil {
		q.Set("seed", strconv.FormatInt(*f.Seed, 10))
	}
	if f.Headroom != nil {
		q.Set("headroom", strconv.FormatFloat(*f.Headroom, 'g', -1, 64))
	}
	return q
}

// Query lists stored cells matching the filter.
func (c *Client) Query(ctx context.Context, f sweep.Filter) ([]store.Result, error) {
	var out QueryResponse
	if err := c.get(ctx, "/v1/query", filterValues(f), &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Cell looks one cell up by its canonical key string.
func (c *Client) Cell(ctx context.Context, key string) (store.Result, error) {
	q := url.Values{}
	q.Set("key", key)
	var out CellResponse
	if err := c.get(ctx, "/v1/cell", q, &out); err != nil {
		return store.Result{}, err
	}
	return out.Result, nil
}

// Summary fetches the per-class CDF aggregate for the filter slice.
// points <= 0 takes the server default.
func (c *Client) Summary(ctx context.Context, f sweep.Filter, points int) (*Summary, error) {
	q := filterValues(f)
	if points > 0 {
		q.Set("points", strconv.Itoa(points))
	}
	var out Summary
	if err := c.get(ctx, "/v1/summary", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Place asks the daemon for one cell, computing it if no run has stored
// it yet. A *StatusError with Code 429 means the daemon's computation
// limit is reached — retry later.
func (c *Client) Place(ctx context.Context, preq PlaceRequest) (*PlaceResponse, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/place", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var out PlaceResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Replicate pushes one already-computed cell to the daemon in its
// canonical wire form — the write path cluster replication and healing
// ride. A 403 StatusError means the daemon's backend accepts no writes.
func (c *Client) Replicate(ctx context.Context, r store.Result) error {
	body, err := store.MarshalResult(r)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, nil)
}

// Digest fetches the daemon's key inventory summary; withKeys asks for
// the full canonical key list too.
func (c *Client) Digest(ctx context.Context, withKeys bool) (*DigestResponse, error) {
	q := url.Values{}
	if withKeys {
		q.Set("keys", "1")
	}
	var out DigestResponse
	if err := c.get(ctx, "/v1/digest", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil, nil)
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.get(ctx, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
