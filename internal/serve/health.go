package serve

// This file is the readiness half of the health plane: /v1/health rolls
// the SLO engine's objective states and the cluster's down-replica set
// into one ok/degraded/critical answer, and /v1/events serves the
// state-transition journal — the front's own entries folded with its
// replicas' when the backend can report them. Liveness stays on
// /healthz, which never consults the backend; readiness is allowed to.

import (
	"net/http"
	"sort"
	"strconv"

	"lowlat/internal/backend"
	"lowlat/internal/obs"
)

// Health statuses, in escalation order. Degraded serves 200 (the daemon
// still answers, a load balancer should not eject it); critical serves
// 503.
const (
	// HealthOK means every objective is within budget and every replica
	// is up.
	HealthOK = "ok"
	// HealthDegraded means an objective is burning budget at warning
	// rate or a replica is down but the daemon is still serving.
	HealthDegraded = "degraded"
	// HealthCritical means at least one objective is paging: both its
	// windows burn past the page threshold.
	HealthCritical = "critical"
)

// HealthReport is the /v1/health payload: the rolled-up status, the
// named reasons behind it, and the full per-objective SLO evaluation.
type HealthReport struct {
	// Status is ok, degraded or critical.
	Status string `json:"status"`
	// Reasons names each contributing problem in one line; empty when ok.
	Reasons []string `json:"reasons,omitempty"`
	// DownReplicas names the replicas currently marked down behind this
	// front (cluster backends only).
	DownReplicas []string `json:"down_replicas,omitempty"`
	// SLOs is the per-objective evaluation: state, burn rates, budget.
	SLOs []obs.SLOStatus `json:"slos,omitempty"`
}

// sloLookup builds the window lookup SLO evaluation reads: the server's
// own endpoint windows first (free), the backend's merged windows on a
// miss — fetched lazily at most once per evaluation, since a cluster
// front's Stats call fans out to its replicas.
func (s *Server) sloLookup() obs.WindowLookup {
	var bw map[string][]obs.WindowSnapshot
	fetched := false
	return func(stage, window string) (obs.WindowSnapshot, bool) {
		if ws, ok := s.obs.Window(stage, window); ok {
			return ws, true
		}
		if !fetched {
			fetched = true
			bw = s.b.Stats().Windows
		}
		return obs.LookupWindows(bw)(stage, window)
	}
}

// Health evaluates the server's readiness: SLO objectives against the
// rolling windows, plus the backend's down-replica set. Any paging
// objective makes the report critical; a warning objective or a down
// replica makes it degraded. Status transitions are journaled once each
// as EventHealthState.
func (s *Server) Health() HealthReport {
	rep := HealthReport{Status: HealthOK}
	if dr, ok := s.b.(backend.DownReporter); ok {
		rep.DownReplicas = dr.DownReplicas()
		for _, l := range rep.DownReplicas {
			rep.Reasons = append(rep.Reasons, "replica "+l+" down")
		}
	}
	rep.SLOs = s.slo.Eval(s.sloLookup())
	for _, st := range rep.SLOs {
		if st.Reason != "" {
			rep.Reasons = append(rep.Reasons, st.Reason)
		}
	}
	switch {
	case obs.WorstState(rep.SLOs) == obs.SLOPage:
		rep.Status = HealthCritical
	case obs.WorstState(rep.SLOs) == obs.SLOWarn || len(rep.DownReplicas) > 0:
		rep.Status = HealthDegraded
	}
	s.noteHealth(rep)
	return rep
}

// noteHealth journals a health-status transition exactly once.
func (s *Server) noteHealth(rep HealthReport) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if rep.Status == s.healthState {
		return
	}
	detail := s.healthState + " -> " + rep.Status
	if len(rep.Reasons) > 0 {
		detail += ": " + rep.Reasons[0]
	}
	s.healthState = rep.Status
	s.journal.Record(obs.EventHealthState, "", detail)
}

// handleHealthReport serves /v1/health. Critical answers 503 so load
// balancers and probes eject the front; degraded stays 200 — a daemon
// with one down replica is still the right place to send traffic.
func (s *Server) handleHealthReport(w http.ResponseWriter, r *http.Request) {
	rep := s.Health()
	code := http.StatusOK
	if rep.Status == HealthCritical {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}

// EventsResponse is the /v1/events payload: state-transition events
// after the request's cursor, oldest first, and the cursor to pass next
// (the largest sequence number returned, or the request's own when
// nothing new happened). On a cluster front, events folded from replicas
// carry an Origin and their own sequence space, so a cursor over a
// folded stream is approximate: it trims exactly on the front's events
// and conservatively on replicas'.
type EventsResponse struct {
	NextSince int64       `json:"next_since"`
	Events    []obs.Event `json:"events"`
}

// eventsSince collects events after the cursor: the backend's folded
// view (own journal + replicas) when it keeps one, merged with the
// server's own journal — unless they are the same journal, as in a
// daemon that shares one journal between its serving and cluster layers.
func (s *Server) eventsSince(r *http.Request, since int64, limit int) []obs.Event {
	local := s.journal.Since(since, limit)
	ev, ok := s.b.(backend.Eventer)
	if !ok {
		return local
	}
	evs, err := ev.Events(r.Context(), since, limit)
	if err != nil {
		return local
	}
	if jr, ok := s.b.(interface{ Journal() *obs.Journal }); ok && jr.Journal() == s.journal {
		// Shared journal: the backend's fold already contains every local
		// entry; appending ours would double-report.
		return evs
	}
	evs = append(evs, local...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	if limit > 0 && len(evs) > limit {
		evs = evs[:limit]
	}
	return evs
}

// handleEvents serves the event journal: ?since=<seq> resumes after a
// cursor, ?limit=<n> bounds the answer (default 256, 0 explicit means
// all retained).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, errf(http.StatusBadRequest, "bad since %q", v))
			return
		}
		since = n
	}
	limit := 256
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, errf(http.StatusBadRequest, "bad limit %q", v))
			return
		}
		limit = n
	}
	events := s.eventsSince(r, since, limit)
	if events == nil {
		events = []obs.Event{}
	}
	next := since
	for _, e := range events {
		if e.Seq > next {
			next = e.Seq
		}
	}
	writeJSON(w, http.StatusOK, EventsResponse{NextSince: next, Events: events})
}
