package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lowlat/internal/backend"
	"lowlat/internal/obs"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// failingBackend answers every Place with ErrUnavailable — a stand-in
// for a daemon whose downstream is gone, driving 5xx through the
// middleware's error counters.
type failingBackend struct{}

func (failingBackend) Lookup(store.CellKey) (store.Result, bool) { return store.Result{}, false }
func (failingBackend) Place(context.Context, store.CellSpec) (store.Result, error) {
	return store.Result{}, backend.ErrUnavailable
}
func (failingBackend) Query(sweep.Filter) []store.Result { return nil }
func (failingBackend) Stats() backend.Stats              { return backend.Stats{Backend: "failing"} }

// mustObjectives parses an objective list or fails the test.
func mustObjectives(t *testing.T, s string) []obs.Objective {
	t.Helper()
	objs, err := obs.ParseObjectives(s)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

// TestHealthEndpoint walks /v1/health from ok to critical: a server with
// a p99 objective reports ok while quiet, pages once its endpoint window
// fills with observations far past target (503, named reason, burn
// rates), and journals both the SLO transition and the health
// transition — all visible through /v1/events and the client.
func TestHealthEndpoint(t *testing.T) {
	s := NewBackendServer(failingBackend{}, Options{
		Objectives:     mustObjectives(t, "http_place p99 < 10ms over 1m"),
		SLOMinInterval: -1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	ctx := context.Background()

	rep, err := c.HealthReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != HealthOK {
		t.Fatalf("quiet server health = %q, want %q", rep.Status, HealthOK)
	}
	if len(rep.SLOs) != 1 || rep.SLOs[0].State != obs.SLOOK {
		t.Fatalf("quiet server SLOs = %+v, want one ok objective", rep.SLOs)
	}

	// Fill the endpoint window with observations 5x past target: bad
	// fraction 1.0 against a 1% budget burns at 100x on both windows.
	for i := 0; i < 100; i++ {
		s.obs.Hist("http_place").Record(50 * time.Millisecond)
	}
	rep, err = c.HealthReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != HealthCritical {
		t.Fatalf("burning server health = %q, want %q", rep.Status, HealthCritical)
	}
	if len(rep.Reasons) == 0 || !strings.Contains(rep.Reasons[0], "http_place") {
		t.Fatalf("critical report names no reason: %+v", rep.Reasons)
	}
	if st := rep.SLOs[0]; st.State != obs.SLOPage || st.BurnLong < 2 {
		t.Fatalf("objective status = %+v, want paging with burn >= 2", st)
	}
	// The raw endpoint must answer 503 for probes that only read codes.
	resp, err := ts.Client().Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("critical /v1/health code = %d, want 503", resp.StatusCode)
	}

	// Both transitions journaled, served by /v1/events, trimmed by cursor.
	ev, err := c.Events(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range ev.Events {
		kinds = append(kinds, e.Type)
	}
	if len(kinds) != 2 || kinds[0] != obs.EventSLOState || kinds[1] != obs.EventHealthState {
		t.Fatalf("journal kinds = %v, want [%s %s]", kinds, obs.EventSLOState, obs.EventHealthState)
	}
	if !strings.Contains(ev.Events[0].Detail, "ok -> page") {
		t.Fatalf("SLO transition detail = %q, want ok -> page", ev.Events[0].Detail)
	}
	tail, err := c.Events(ctx, ev.NextSince, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 0 {
		t.Fatalf("events after cursor %d = %+v, want none", ev.NextSince, tail.Events)
	}

	// /metrics renders the paging objective and the health gauge.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`lowlat_slo_state{objective="http_place p99 < 10ms over 1m"} 2`,
		"lowlat_health 2",
		"# HELP lowlat_slo_burn_long",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMiddlewareErrorStages checks the 5xx accounting behind error-rate
// objectives: a failed place bumps http_place_errors and the aggregate
// http/http_errors stages, and the windows surface through Stats.
func TestMiddlewareErrorStages(t *testing.T) {
	s := NewBackendServer(failingBackend{}, Options{
		Objectives:     mustObjectives(t, "error_rate < 10% over 1m"),
		SLOMinInterval: -1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	ctx := context.Background()

	if _, err := c.Place(ctx, PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"}); err == nil {
		t.Fatal("place over a failing backend succeeded")
	}
	for stage, want := range map[string]int64{
		"http_place": 1, "http_place_errors": 1, "http": 1, "http_errors": 1,
	} {
		ws, ok := s.obs.Window(stage, "1m")
		if !ok || ws.Count != want {
			t.Errorf("window %s count = %+v ok=%v, want %d", stage, ws.Count, ok, want)
		}
	}
	// A 4xx must not burn budget: bad cell key answers 400.
	if _, err := c.Cell(ctx, "nonsense"); err == nil {
		t.Fatal("bad cell key succeeded")
	}
	if ws, _ := s.obs.Window("http_errors", "1m"); ws.Count != 1 {
		t.Errorf("http_errors after 4xx = %d, want still 1", ws.Count)
	}

	// Every bad request against a 10% budget: error-rate objective pages.
	rep := s.Health()
	if rep.Status != HealthCritical || rep.SLOs[0].CurrentRate == 0 {
		t.Fatalf("health after errors = %+v, want critical with a measured rate", rep)
	}

	st := s.Stats()
	if len(st.Windows["http_place"]) == 0 {
		t.Fatalf("Stats().Windows missing http_place: %v", keysOf(st.Windows))
	}
}

// TestWatchStream subscribes a client to /v1/watch and checks the
// snapshots carry health, windows and journal entries recorded while
// the stream is live.
func TestWatchStream(t *testing.T) {
	s := NewBackendServer(failingBackend{}, Options{SLOMinInterval: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()

	s.obs.Hist("http_query").Record(time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events []obs.Event
	n := 0
	err := c.Watch(ctx, 20*time.Millisecond, func(ev WatchEvent) error {
		n++
		if ev.Health.Status != HealthOK {
			t.Errorf("snapshot %d health = %q, want ok", n, ev.Health.Status)
		}
		if len(ev.Windows["http_query"]) == 0 {
			t.Errorf("snapshot %d carries no http_query windows", n)
		}
		events = append(events, ev.Events...)
		if n == 1 {
			// Recorded mid-stream: must ride a later snapshot exactly once.
			s.journal.Record(obs.EventReplicaDown, "r0", "test transition")
		}
		if n >= 3 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("saw %d snapshots, want >= 3", n)
	}
	if len(events) != 1 || events[0].Type != obs.EventReplicaDown {
		t.Fatalf("streamed events = %+v, want exactly the one recorded transition", events)
	}
}

// TestWatchBadParams rejects malformed intervals and cursors up front.
func TestWatchBadParams(t *testing.T) {
	s := NewBackendServer(failingBackend{}, Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, q := range []string{"?interval=banana", "?interval=-1s", "?since=-3", "?since=x"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/watch" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("watch%s code = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHealthDegradedOnDownReplica maps a down replica (without any SLO
// breach) to degraded — 200, named replica.
func TestHealthDegradedOnDownReplica(t *testing.T) {
	s := NewBackendServer(downBackend{failingBackend{}}, Options{})
	rep := s.Health()
	if rep.Status != HealthDegraded {
		t.Fatalf("health with a down replica = %q, want %q", rep.Status, HealthDegraded)
	}
	if len(rep.Reasons) != 1 || !strings.Contains(rep.Reasons[0], "replica-2") {
		t.Fatalf("reasons = %v, want the down replica named", rep.Reasons)
	}
	// The transition journaled once, not per evaluation.
	s.Health()
	evs := s.journal.Since(0, 0)
	if len(evs) != 1 || evs[0].Type != obs.EventHealthState {
		t.Fatalf("journal = %+v, want one health transition", evs)
	}
}

// downBackend reports one down replica.
type downBackend struct{ failingBackend }

func (downBackend) DownReplicas() []string { return []string{"replica-2"} }

// keysOf lists a windows map's stage names for failure messages.
func keysOf(m map[string][]obs.WindowSnapshot) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
