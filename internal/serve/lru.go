package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded map with least-recently-used eviction. The
// server runs two: the hot-path response cache (content key -> stored
// result, ahead of the store index and, under a future larger-than-
// memory store, the disk) and the request-key -> content-key shortcut
// that lets a repeat /v1/place skip graph construction. Both must stay
// bounded on a long-running daemon — request coordinates are
// client-supplied, so an unbounded index would grow monotonically under
// a varied workload.
type lruCache[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used; guarded by mu
	m   map[string]*list.Element // guarded by mu
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached value for key, promoting it to most recent.
func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry[V]).val, true
}

// add inserts or refreshes an entry, evicting the least recently used
// beyond capacity.
func (c *lruCache[V]) add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(e)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry[V]).key)
	}
}

// len reports the current entry count.
func (c *lruCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
