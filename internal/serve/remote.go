package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"lowlat/internal/backend"
	"lowlat/internal/obs"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// RemoteOptions tunes a Remote backend. The zero value retries 429s with
// the default Backoff and bounds context-less calls at 30 seconds.
type RemoteOptions struct {
	// Retry is the 429 backoff policy (zero value = defaults).
	Retry Backoff
	// Timeout bounds the interface methods whose signatures carry no
	// context — Lookup, Query, Stats (default 30s).
	Timeout time.Duration
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// Remote adapts the typed daemon client to the placement-backend
// interface: every method is one HTTP round trip (Place with bounded,
// jittered retry on 429 backpressure). A Remote is how one process's
// sweep or daemon composes onto another daemon's store and engine — and
// N Remotes behind a consistent-hash ring are a cluster.
type Remote struct {
	c    *Client
	opts RemoteOptions

	lookups atomic.Int64
	places  atomic.Int64
	queries atomic.Int64
	errs    atomic.Int64
	retried atomic.Int64
	obs     *obs.Registry
}

// NewRemote wraps a Client in the backend interface.
func NewRemote(c *Client, opts RemoteOptions) *Remote {
	return &Remote{c: c, opts: opts.withDefaults(), obs: obs.NewRegistry()}
}

// hop records one HTTP round trip into the remote_hop stage histogram
// (and the request's trace, when ctx carries one).
func (r *Remote) hop(ctx context.Context, t0 time.Time) {
	r.obs.Observe(ctx, obs.StageRemoteHop, time.Since(t0))
}

// BaseURL returns the daemon root this backend talks to (cluster labels
// and error messages use it).
func (r *Remote) BaseURL() string { return r.c.BaseURL }

// wrap classifies an error: application-level daemon answers
// (StatusError) pass through untouched so callers can re-render their
// status; anything else — a refused connection, a dead socket — marks the
// replica unavailable, which is what cluster routing reroutes on.
func (r *Remote) wrap(err error) error {
	if err == nil {
		return nil
	}
	var se *StatusError
	if errors.As(err, &se) {
		return err
	}
	return fmt.Errorf("%s: %w: %v", r.c.BaseURL, backend.ErrUnavailable, err)
}

// ctx derives the bounded context for the interface methods that carry
// none.
func (r *Remote) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), r.opts.Timeout)
}

// Lookup fetches one cell by content key. Any failure — a 404, a dead
// daemon — reads as a miss; callers that need to distinguish probe
// health separately (Prober).
func (r *Remote) Lookup(k store.CellKey) (store.Result, bool) {
	r.lookups.Add(1)
	ctx, cancel := r.ctx()
	defer cancel()
	t0 := time.Now()
	res, err := r.c.Cell(ctx, k.String())
	r.hop(ctx, t0)
	if err != nil {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != 404 {
			r.errs.Add(1)
		}
		return store.Result{}, false
	}
	return res, true
}

// Place asks the daemon for one cell, retrying 429 backpressure with the
// configured backoff and honoring ctx throughout.
func (r *Remote) Place(ctx context.Context, spec store.CellSpec) (store.Result, error) {
	res, _, err := r.PlaceSourced(ctx, spec)
	return res, err
}

// PlaceSourced is Place with the daemon-reported provenance.
func (r *Remote) PlaceSourced(ctx context.Context, spec store.CellSpec) (store.Result, backend.Source, error) {
	r.places.Add(1)
	spec = spec.Normalized()
	loc := spec.Locality
	req := PlaceRequest{
		Net:      spec.Net,
		Seed:     spec.Seed,
		Scheme:   spec.Scheme,
		Headroom: spec.Headroom,
		Load:     spec.Load,
		Locality: &loc,
	}
	var resp *PlaceResponse
	err := r.opts.Retry.Do(ctx, RetryableStatus,
		func() { r.retried.Add(1) },
		func() error {
			t0 := time.Now()
			p, err := r.c.Place(ctx, req)
			r.hop(ctx, t0)
			if err != nil {
				return err
			}
			resp = p
			return nil
		})
	if err != nil {
		r.errs.Add(1)
		return store.Result{}, "", r.wrap(err)
	}
	return resp.Result, backend.Source(resp.Source), nil
}

// Query lists the daemon's cells matching the filter; failures read as
// an empty answer (QueryContext reports them).
func (r *Remote) Query(f sweep.Filter) []store.Result {
	ctx, cancel := r.ctx()
	defer cancel()
	res, err := r.QueryContext(ctx, f)
	if err != nil {
		return nil
	}
	return res
}

// QueryContext is the error-aware Query the cluster's fan-out uses.
func (r *Remote) QueryContext(ctx context.Context, f sweep.Filter) ([]store.Result, error) {
	r.queries.Add(1)
	t0 := time.Now()
	res, err := r.c.Query(ctx, f)
	r.hop(ctx, t0)
	if err != nil {
		r.errs.Add(1)
		return nil, r.wrap(err)
	}
	return res, nil
}

// Put pushes one computed cell to the daemon via /v1/replicate — what a
// replicating cluster calls on the owners that did not serve the
// request. Daemon-level refusals (a read-only store answers 403) pass
// through as StatusError; transport failures read as ErrUnavailable so
// the cluster marks the replica down and hints the write.
func (r *Remote) Put(res store.Result) error {
	ctx, cancel := r.ctx()
	defer cancel()
	t0 := time.Now()
	err := r.c.Replicate(ctx, res)
	r.hop(ctx, t0)
	if err != nil {
		r.errs.Add(1)
		return r.wrap(err)
	}
	return nil
}

// Keys fetches the daemon's full key inventory — the anti-entropy
// exchange. Keys the daemon renders that this client cannot parse are a
// protocol error, not a partial answer.
func (r *Remote) Keys(ctx context.Context) ([]store.CellKey, error) {
	resp, err := r.c.Digest(ctx, true)
	if err != nil {
		r.errs.Add(1)
		return nil, r.wrap(err)
	}
	keys := make([]store.CellKey, len(resp.Keys))
	for i, ks := range resp.Keys {
		k, err := store.ParseCellKey(ks)
		if err != nil {
			r.errs.Add(1)
			return nil, fmt.Errorf("%s: %w", r.c.BaseURL, err)
		}
		keys[i] = k
	}
	return keys, nil
}

// KeyDigest fetches the daemon's key count and order-independent key-set
// digest — the cheap first half of anti-entropy.
func (r *Remote) KeyDigest(ctx context.Context) (store.Digest, int, error) {
	resp, err := r.c.Digest(ctx, false)
	if err != nil {
		r.errs.Add(1)
		return 0, 0, r.wrap(err)
	}
	var d store.Digest
	if err := d.UnmarshalJSON([]byte(`"` + resp.Digest + `"`)); err != nil {
		r.errs.Add(1)
		return 0, 0, fmt.Errorf("%s: %w", r.c.BaseURL, err)
	}
	return d, resp.Count, nil
}

// Probe checks the daemon's liveness endpoint — the health mark cluster
// routing flips replicas on.
func (r *Remote) Probe(ctx context.Context) error {
	if err := r.c.Health(ctx); err != nil {
		return r.wrap(err)
	}
	return nil
}

// Stats merges the daemon's counters (gauges, hit/compute counts) with
// this client's own call counters. An unreachable daemon yields zero
// gauges and a bumped error count rather than an error: Stats is a
// snapshot, not a health check.
func (r *Remote) Stats() backend.Stats {
	out := backend.Stats{
		Backend: "remote",
		Lookups: r.lookups.Load(),
		Places:  r.places.Load(),
		Queries: r.queries.Load(),
		Errors:  r.errs.Load(),
		Retried: r.retried.Load(),
	}
	out.Stages = obs.MergeStages(nil, r.obs.Snapshot())
	out.Windows = obs.MergeWindows(nil, r.obs.Windows())
	ctx, cancel := r.ctx()
	defer cancel()
	st, err := r.c.Stats(ctx)
	if err != nil {
		out.Errors = r.errs.Add(1)
		return out
	}
	out.Cells = st.StoreCells
	out.MemoEntries = st.MemoEntries
	out.ReadOnly = st.ReadOnly
	out.StoreHits = st.StoreHits
	out.MemoHits = st.MemoHits
	out.Computed = st.Computed
	out.Rejected = st.Rejected
	out.InFlight = st.InFlight
	// The daemon's own stage histograms (solve, store reads/writes, its
	// HTTP endpoints) merge under this client's remote_hop, so a front's
	// stats see through the wire — windows the same way.
	out.Stages = obs.MergeStages(out.Stages, st.Stages)
	out.Windows = obs.MergeWindows(out.Windows, st.Windows)
	return out
}

// Events fetches the daemon's state-transition journal — the extension
// a cluster front folds into its own /v1/events, tagging each entry
// with this replica's label.
func (r *Remote) Events(ctx context.Context, since int64, limit int) ([]obs.Event, error) {
	resp, err := r.c.Events(ctx, since, limit)
	if err != nil {
		r.errs.Add(1)
		return nil, r.wrap(err)
	}
	return resp.Events, nil
}
