package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"lowlat/internal/store"
)

// TestReplicateAndDigest exercises the replication endpoints end to end:
// a cell computed on daemon A pushes to daemon B via /v1/replicate, B's
// /v1/digest converges to A's, and B serves the cell by key without ever
// having computed it.
func TestReplicateAndDigest(t *testing.T) {
	sa, ca := newTestServer(t, openStore(t), Options{Workers: 1})
	sb, cb := newTestServer(t, openStore(t), Options{Workers: 1})

	resp, err := ca.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Result

	dB, err := cb.Digest(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if dB.Count != 0 {
		t.Fatalf("fresh daemon digest count = %d, want 0", dB.Count)
	}

	if err := cb.Replicate(context.Background(), res); err != nil {
		t.Fatalf("replicate: %v", err)
	}

	// Digests converge: B now answers the same key-set digest as A.
	dA, err := ca.Digest(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	dB, err = cb.Digest(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if dB.Count != 1 || dB.Digest != dA.Digest {
		t.Fatalf("after replicate: B digest %+v, A digest %+v — want equal with count 1", dB, dA)
	}
	if len(dB.Keys) != 1 || dB.Keys[0] != res.Key.String() {
		t.Fatalf("B keys = %v, want [%s]", dB.Keys, res.Key)
	}

	// B serves the replicated cell by content key, no computation.
	got, err := cb.Cell(context.Background(), res.Key.String())
	if err != nil {
		t.Fatalf("cell on replica target: %v", err)
	}
	if got != res {
		t.Fatalf("replicated cell differs:\n got %+v\nwant %+v", got, res)
	}
	if st := sb.Stats(); st.Replications != 1 || st.Computed != 0 {
		t.Fatalf("B stats replications=%d computed=%d, want 1 and 0", st.Replications, st.Computed)
	}
	if st := sa.Stats(); st.Replications != 0 {
		t.Fatalf("A stats replications=%d, want 0", st.Replications)
	}
}

// TestReplicateRejectsBadRecords pins the endpoint's refusal modes: a
// body that is not a canonical result answers 400, a keyless record
// answers 400, and a read-only backend answers 403.
func TestReplicateRejectsBadRecords(t *testing.T) {
	_, c := newTestServer(t, openStore(t), Options{Workers: 1})

	post := func(body string) *StatusError {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/replicate", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var se *StatusError
		if err := c.do(req, nil); err != nil {
			var ok bool
			if se, ok = err.(*StatusError); !ok {
				t.Fatalf("want StatusError, got %T: %v", err, err)
			}
		}
		return se
	}

	if se := post("not json"); se == nil || se.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: %v, want 400", se)
	}
	if se := post(`{"metrics":{}}`); se == nil || se.Code != http.StatusBadRequest {
		t.Fatalf("keyless record: %v, want 400", se)
	}

	// A read-only mount refuses replicated writes with 403, same as
	// computed ones.
	st := openStore(t)
	dir := st.Dir()
	st.Close()
	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })
	_, rc := newTestServer(t, ro, Options{})
	res := store.Result{Key: store.CellKey{Graph: 1, Matrix: 2, Scheme: "sp", Config: 3}}
	err = rc.Replicate(context.Background(), res)
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusForbidden {
		t.Fatalf("replicate to read-only daemon: %v, want 403", err)
	}
	if !strings.Contains(se.Message, "read-only") && !strings.Contains(se.Message, "writes") {
		t.Fatalf("unexpected refusal message: %q", se.Message)
	}
}
