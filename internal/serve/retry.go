package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"
)

// Backoff is a bounded exponential retry policy with seeded jitter: the
// client-side half of the daemon's 429 admission control. The server
// sheds load by answering "computation limit reached" immediately; a
// Remote backend turns that into a short, capped, jittered wait instead
// of surfacing a terminal error — so a burst of concurrent places against
// a saturated replica spreads out rather than synchronizing into a
// retry storm.
//
// The policy is a value: copying it is cheap, the zero value means the
// defaults, and the jitter source is seeded so two equal policies produce
// identical delay sequences — what makes retry behavior assertable in
// tests rather than flaky.
type Backoff struct {
	// Attempts caps how many times the operation runs in total,
	// including the first try (default 4; 1 disables retrying).
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it (default 50ms).
	Base time.Duration
	// Max caps the per-retry delay (default 2s).
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized away:
	// a delay d becomes uniform in ((1-Jitter)·d, d] (default 0.5;
	// negative or >1 values clamp).
	Jitter float64
	// Seed seeds the jitter source (default 1). Each Do call derives its
	// own stream from (Seed, call ordinal), so concurrent retries against
	// one saturated replica dither apart instead of synchronizing — while
	// the schedule stays a pure function of the seed and call order for
	// tests (Delay with an explicit source pins exact values).
	Seed int64
	// Sleep overrides the delay implementation (tests record delays
	// instead of waiting). The default honors ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	if b.Sleep == nil {
		b.Sleep = sleepCtx
	}
	return b
}

// sleepCtx waits d, returning early with ctx's error if it dies first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Delay returns the backoff delay before retry number n (1-based),
// jittered by the given source: min(Max, Base·2^(n-1)) shrunk by up to
// Jitter. Exposed for tests that pin the schedule.
func (b Backoff) Delay(n int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= b.Max {
			d = b.Max
			break
		}
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		d = d - time.Duration(rng.Float64()*b.Jitter*float64(d))
	}
	return d
}

// doSeq distinguishes concurrent Do calls: mixing the call ordinal into
// the jitter seed keeps simultaneous retry loops (8 clients hitting one
// saturated replica) dithered apart instead of sleeping in lockstep —
// the synchronization the jitter exists to break.
var doSeq atomic.Int64

// Do runs fn until it succeeds, fails with a non-retryable error, runs
// out of attempts, or ctx dies. onRetry (when non-nil) runs before each
// retry's delay — observability and test hooks. When ctx dies mid-wait
// the last operation error and the context error are joined, so callers
// can still see both the 429 and the cancellation.
func (b Backoff) Do(ctx context.Context, retryable func(error) bool, onRetry func(), fn func() error) error {
	b = b.withDefaults()
	rng := rand.New(rand.NewSource(b.Seed + doSeq.Add(1)))
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || retryable == nil || !retryable(err) || attempt >= b.Attempts {
			return err
		}
		if onRetry != nil {
			onRetry()
		}
		if serr := b.Sleep(ctx, b.Delay(attempt, rng)); serr != nil {
			return errors.Join(serr, err)
		}
	}
}

// RetryableStatus reports whether err is a daemon backpressure response
// (429) — the one status a client should retry rather than surface.
func RetryableStatus(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}
