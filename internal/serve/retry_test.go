package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lowlat/internal/backend"
	"lowlat/internal/store"
)

// TestBackoffSchedule pins the deterministic delay sequence: exponential
// from Base, capped at Max, jitter drawn from the seeded source — two
// equal policies produce identical schedules.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 450 * time.Millisecond, Jitter: 0.5, Seed: 7}
	a1 := rand.New(rand.NewSource(7))
	a2 := rand.New(rand.NewSource(7))
	for n := 1; n <= 6; n++ {
		d1 := b.Delay(n, a1)
		d2 := b.Delay(n, a2)
		if d1 != d2 {
			t.Fatalf("retry %d: delay %v vs %v from equal seeds", n, d1, d2)
		}
		// The undithered delay for retry n is min(Max, Base·2^(n-1));
		// jitter only ever shrinks it, by at most half.
		full := b.Base << (n - 1)
		if full > b.Max {
			full = b.Max
		}
		if d1 > full || d1 < full/2 {
			t.Fatalf("retry %d: delay %v outside (%v/2, %v]", n, d1, full, full)
		}
	}
}

// TestBackoffRetries429 pins the Do contract: 429s retry up to Attempts
// with recorded (not slept) delays, success stops the loop, and
// non-retryable errors surface immediately.
func TestBackoffRetries429(t *testing.T) {
	var slept []time.Duration
	b := Backoff{
		Attempts: 4,
		Base:     10 * time.Millisecond,
		Seed:     1,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	overloaded := &StatusError{Code: http.StatusTooManyRequests, Message: "busy"}

	// Succeeds on the third attempt: two sleeps, nil error.
	calls := 0
	err := b.Do(context.Background(), RetryableStatus, nil, func() error {
		calls++
		if calls < 3 {
			return overloaded
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("Do = %v after %d calls, %d sleeps; want success on 3rd call", err, calls, len(slept))
	}

	// Never succeeds: Attempts calls, the last 429 surfaces.
	calls, slept = 0, nil
	err = b.Do(context.Background(), RetryableStatus, nil, func() error { calls++; return overloaded })
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 || calls != 4 || len(slept) != 3 {
		t.Fatalf("exhausted Do = %v after %d calls, %d sleeps; want the 429 after 4 attempts", err, calls, len(slept))
	}

	// A non-retryable error is terminal on the first call.
	calls = 0
	boom := &StatusError{Code: http.StatusBadRequest, Message: "bad"}
	err = b.Do(context.Background(), RetryableStatus, nil, func() error { calls++; return boom })
	if !errors.As(err, &se) || se.Code != 400 || calls != 1 {
		t.Fatalf("non-retryable Do = %v after %d calls, want immediate 400", err, calls)
	}
}

// TestBackoffHonorsContext pins cancellation: a context that dies during
// the wait stops the loop, and the error carries both the cancellation
// and the last 429.
func TestBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{
		Attempts: 5,
		Base:     time.Millisecond,
		Seed:     1,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	overloaded := &StatusError{Code: http.StatusTooManyRequests, Message: "busy"}
	calls := 0
	err := b.Do(ctx, RetryableStatus, nil, func() error { calls++; return overloaded })
	if calls != 1 {
		t.Fatalf("%d calls after cancellation, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("err = %v, want the last 429 preserved in the chain", err)
	}
}

// TestRemoteBackoffOn429 drives a Remote against a server that answers
// 429 twice before serving, and pins that the backend absorbs the
// backpressure invisibly: one successful Place, two recorded retries.
func TestRemoteBackoffOn429(t *testing.T) {
	st := openStore(t)
	inner, _ := newTestServer(t, st, Options{Workers: 1})
	var rejected atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/place" && rejected.Add(1) <= 2 {
			writeError(w, errf(http.StatusTooManyRequests, "synthetic backpressure"))
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(gate.Close)

	var slept []time.Duration
	remote := NewRemote(NewClient(gate.URL), RemoteOptions{
		Retry: Backoff{
			Attempts: 4,
			Base:     5 * time.Millisecond,
			Seed:     3,
			Sleep:    func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
		},
	})
	res, src, err := remote.PlaceSourced(context.Background(), store.CellSpec{Net: "star-6", Seed: 1, Scheme: "sp", Locality: 1})
	if err != nil {
		t.Fatal(err)
	}
	if src != backend.SourceComputed {
		t.Fatalf("source %q, want computed", src)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff sleeps, want 2 (one per 429)", len(slept))
	}
	if res.Meta.Net != "star-6" {
		t.Fatalf("result %+v", res)
	}
	if s := remote.Stats(); s.Retried != 2 {
		t.Fatalf("stats.Retried = %d, want 2", s.Retried)
	}
}

// TestRemoteClassifiesErrors pins the error taxonomy cluster routing
// depends on: a daemon application error passes through as a
// StatusError, a dead daemon wraps backend.ErrUnavailable.
func TestRemoteClassifiesErrors(t *testing.T) {
	st := openStore(t)
	_, c := newTestServer(t, st, Options{Workers: 1})
	remote := NewRemote(c, RemoteOptions{})

	// Application error: bad spec → 400 StatusError, not unavailable.
	_, err := remote.Place(context.Background(), store.CellSpec{Net: "star-6", Seed: 1, Scheme: "frob", Locality: 1})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("bad-scheme err = %v, want 400 StatusError", err)
	}
	if errors.Is(err, backend.ErrUnavailable) {
		t.Fatal("application error misclassified as unavailable")
	}

	// Dead daemon: transport failure → ErrUnavailable.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	gone := NewRemote(NewClient(dead.URL), RemoteOptions{Timeout: 2 * time.Second})
	_, err = gone.Place(context.Background(), store.CellSpec{Net: "star-6", Seed: 1, Scheme: "sp", Locality: 1})
	if !errors.Is(err, backend.ErrUnavailable) {
		t.Fatalf("dead-daemon err = %v, want ErrUnavailable", err)
	}
	if err := gone.Probe(context.Background()); !errors.Is(err, backend.ErrUnavailable) {
		t.Fatalf("dead-daemon probe = %v, want ErrUnavailable", err)
	}

	// Live daemon probes clean.
	if err := remote.Probe(context.Background()); err != nil {
		t.Fatalf("live probe: %v", err)
	}
}
