// Package serve is the query-serving daemon layer: a long-running HTTP
// API over a placement backend, turning the batch landscape study into an
// online service — the operator's "how latency-capable is my topology,
// and what does scheme X buy me?" asked as a request instead of a sweep.
// Related always-on systems (cISP's latency service, the latency-aware
// inter-domain routing daemon) answer path/latency queries the same way:
// mostly from precomputed state, computing on demand when a query misses.
//
// The server is a thin HTTP skin over lowlat's one placement-access API
// (internal/backend): cell lookup and filtered listing (/v1/cell,
// /v1/query, reusing sweep.Filter), aggregate per-class CDF summaries
// (/v1/summary), on-demand placement (/v1/place) and counters
// (/v1/stats). Mounted over a Local backend it is the classic
// one-store-one-daemon deployment; mounted over a cluster backend the
// same daemon is a stateless front for N sharded replicas — daemons
// compose.
//
// The hot path is production-shaped rather than a bare mux:
//
//   - requests for the same content coalesce through a singleflight
//     group, so N concurrent misses on one cell trigger one backend
//     dispatch (one computation, wherever the backend routes it);
//   - finished cells sit in a bounded LRU keyed by content key, ahead of
//     the backend;
//   - the Local backend bounds admitted computations by a semaphore —
//     beyond it /v1/place answers 429 immediately instead of queueing
//     without bound — and runs actual solves on a bounded worker pool;
//   - shutdown drains in-flight work (http.Server.Shutdown semantics);
//   - /v1/stats exposes the hit/miss/coalesce/in-flight counters.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lowlat/internal/backend"
	"lowlat/internal/obs"
	"lowlat/internal/predict"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// Options tunes a Server. The zero value serves with defaults. Workers,
// MaxInflight and OnPlace configure the Local backend New builds; a
// server built over an existing backend (NewBackendServer) ignores them.
type Options struct {
	// Workers bounds concurrent engine work — matrix generation and
	// placement solves (0 = one per CPU). Workers:1 makes the compute
	// side fully sequential, which is what the coalescing acceptance
	// test runs under.
	Workers int
	// MaxInflight bounds how many place computations may be admitted at
	// once (computing or waiting for a worker); beyond it /v1/place
	// answers 429 Too Many Requests. Default 4x the resolved worker
	// count. Requests served from cache or store never consume a slot,
	// and neither do requests coalescing onto an admitted flight.
	MaxInflight int
	// CacheSize bounds the LRU response cache in entries (default 512).
	CacheSize int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is cancelled (default 15s).
	DrainTimeout time.Duration
	// PlaceTimeout bounds one /v1/place flight end to end (default 10m).
	// Local solves rarely approach it; what it actually protects against
	// is a proxied backend that blackholes — without a deadline a hung
	// downstream would pin the flight leader, its coalesced followers,
	// and the request key forever.
	PlaceTimeout time.Duration
	// OnPlace, when non-nil, runs just before each engine invocation —
	// the precise computation count, mirroring sweep.Options.OnPlace.
	// Tests hang invocation counting and deterministic barriers off it.
	OnPlace func(key store.CellKey)
	// Predict wraps the backend New builds in the landscape-interpolation
	// fast path (backend.Predictive), trained from the store's current
	// contents: trained-region /v1/place requests answer in microseconds
	// with "source": "predicted" and no solver work, everything else
	// falls back to the exact path. NewBackendServer ignores it — callers
	// fronting their own backend wrap it themselves.
	Predict bool
	// PredictRefine queues a background exact solve for each predicted
	// answer, persisting ground truth that replaces the interpolated
	// sample. The refinement worker stops when Serve returns.
	PredictRefine bool
	// PredictOptions tunes the interpolation index built when Predict is
	// set (confidence radius, minimum support, roughness bound).
	PredictOptions predict.Options
	// Logger, when non-nil, receives one structured record per request:
	// request ID, endpoint, status, duration, handler annotations (cell
	// key, answer source) and per-stage timings. Nil disables request
	// logging; latency histograms and the slow ring record regardless.
	Logger *slog.Logger
	// SlowThreshold is the request duration at or above which a request
	// is retained in the /v1/slow ring (default 500ms; negative disables
	// retention).
	SlowThreshold time.Duration
	// SlowRingSize bounds the /v1/slow ring in entries (default 64).
	SlowRingSize int
	// Objectives are the declarative SLOs /v1/health and the
	// lowlat_slo_* gauges evaluate (see obs.ParseObjective for the
	// grammar). Empty means no SLO engine: /v1/health reports on down
	// replicas alone.
	Objectives []obs.Objective
	// SLOPageBurn is the burn rate both windows must reach before an
	// objective pages (default 2).
	SLOPageBurn float64
	// SLOMinInterval caches SLO evaluations (default 1s) — a cluster
	// front's evaluation may fan out to replicas for backend-stage
	// windows, so /v1/health and /metrics must not re-pay that per
	// scrape. Negative disables caching (tests).
	SLOMinInterval time.Duration
	// Windows is the rolling-window geometry the server's endpoint
	// histograms (and the SLO engine's short window) roll on; the zero
	// value is the obs default (10s slots; 1m, 5m, 1h windows).
	Windows obs.WindowConfig
	// Journal is the event journal /v1/events serves and SLO/health
	// transitions record into. A daemon fronting a cluster passes the
	// same journal to cluster.Options.Journal so replica transitions and
	// serving-layer transitions land in one sequence. Nil allocates a
	// private JournalSize-entry journal.
	Journal *obs.Journal
	// JournalSize bounds the private journal allocated when Journal is
	// nil (default 1024 entries).
	JournalSize int
	// WatchInterval is the default /v1/watch snapshot period when the
	// request does not name one (default 2s).
	WatchInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 512
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.PlaceTimeout <= 0 {
		o.PlaceTimeout = 10 * time.Minute
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 500 * time.Millisecond
	}
	if o.Journal == nil {
		o.Journal = obs.NewJournal(o.JournalSize)
	}
	if o.WatchInterval <= 0 {
		o.WatchInterval = 2 * time.Second
	}
	return o
}

// Stats is the /v1/stats payload: monotonic counters since the server
// started, plus backend gauges. Field order is the wire order.
type Stats struct {
	// Backend names the implementation serving /v1/place: "local",
	// "store", "remote", "cluster".
	Backend string `json:"backend"`
	// StoreCells and MemoEntries gauge the backend's visible store.
	StoreCells  int  `json:"store_cells"`
	MemoEntries int  `json:"memo_entries"`
	ReadOnly    bool `json:"read_only"`
	// Queries, CellLookups and PlaceRequests count requests per endpoint.
	Queries       int64 `json:"queries"`
	CellLookups   int64 `json:"cell_lookups"`
	PlaceRequests int64 `json:"place_requests"`
	// CacheHits were answered by the LRU; CacheMisses consulted it and
	// fell through to the backend. StoreHits were answered by the
	// backend's store, MemoHits derived their cell key from the
	// calibration memo without regenerating the matrix.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	StoreHits   int64 `json:"store_hits"`
	MemoHits    int64 `json:"memo_hits"`
	// Coalesced requests joined another request's in-flight computation;
	// Computed counts engine invocations; Rejected counts 429s.
	Coalesced int64 `json:"coalesced"`
	Computed  int64 `json:"computed"`
	Rejected  int64 `json:"rejected"`
	// InFlight gauges currently admitted computations; CachedEntries
	// gauges the LRU.
	InFlight      int64 `json:"in_flight"`
	CachedEntries int   `json:"cached_entries"`
	// Predicted counts places answered by the interpolation fast path,
	// PredictFallbacks those it handed to the exact path; Refined and
	// RefineDropped count background ground-truth solves completed and
	// shed. Surfaces and SurfaceSamples gauge the trained index. All six
	// appear only when the backend is predictive.
	Predicted        int64 `json:"predicted,omitempty"`
	PredictFallbacks int64 `json:"predict_fallbacks,omitempty"`
	Refined          int64 `json:"refined,omitempty"`
	RefineDropped    int64 `json:"refine_dropped,omitempty"`
	Surfaces         int   `json:"surfaces,omitempty"`
	SurfaceSamples   int   `json:"surface_samples,omitempty"`
	// Replications counts cells accepted through /v1/replicate — writes
	// pushed by a replicating or healing cluster peer, as opposed to
	// cells this daemon computed itself.
	Replications int64 `json:"replications"`
	// Replication counters, mirrored from a cluster backend running with
	// R > 1 (see backend.Stats for meanings). All zero — and absent —
	// otherwise.
	ReplicaFactor int   `json:"replica_factor,omitempty"`
	Replicated    int64 `json:"replicated,omitempty"`
	ReadRepairs   int64 `json:"read_repairs,omitempty"`
	HintsQueued   int64 `json:"hints_queued,omitempty"`
	HintsDrained  int64 `json:"hints_drained,omitempty"`
	HintsDropped  int64 `json:"hints_dropped,omitempty"`
	HintsPending  int   `json:"hints_pending,omitempty"`
	Healed        int64 `json:"healed,omitempty"`
	HealSweeps    int64 `json:"heal_sweeps,omitempty"`
	// Replicas carries per-replica backend snapshots when the server
	// fronts a cluster.
	Replicas []backend.Stats `json:"replicas,omitempty"`
	// SlowRequests counts requests that crossed the slow threshold since
	// the server started (including entries the ring has since evicted).
	SlowRequests int64 `json:"slow_requests,omitempty"`
	// Stages carries per-stage latency histogram snapshots — the
	// backend's (solve, store_read/store_write, predict, replicate, heal,
	// remote_hop; cluster-merged across replicas when fronting a cluster)
	// plus this server's per-endpoint http_* timings. Each snapshot
	// reports count/sum/max, p50/p90/p99 and the exact sparse buckets the
	// quantiles were computed from.
	Stages map[string]obs.Snapshot `json:"stages,omitempty"`
	// Windows carries the rolling-window view of the same stages, keyed
	// by stage name, smallest span first — the backend's merged with this
	// server's http_* endpoint windows. Each entry reports the window
	// name, covered span, observation rate and a full quantile snapshot
	// over just that window.
	Windows map[string][]obs.WindowSnapshot `json:"windows,omitempty"`
}

// counters is the server's HTTP-layer atomic counter block; compute-side
// counters live in the backend.
type counters struct {
	queries      atomic.Int64
	cells        atomic.Int64
	places       atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	replications atomic.Int64
}

// PlaceRequest asks for one scenario cell by its coordinates. Net takes
// any single-network sweep grid term (a zoo name, "randomgeo:<n>:<seed>",
// "multiregion:<RxP>:<seed>").
type PlaceRequest struct {
	Net      string  `json:"net"`
	Seed     int64   `json:"seed"`
	Scheme   string  `json:"scheme"`
	Headroom float64 `json:"headroom,omitempty"`
	// Load is the target min-cut utilization (0 = the paper's 1/1.3).
	Load float64 `json:"load,omitempty"`
	// Locality is the traffic locality ℓ; nil = 1, explicit 0 = pure
	// gravity.
	Locality *float64 `json:"locality,omitempty"`
}

// PlaceResponse carries the cell and where it came from: "cache" (LRU),
// "store" (persisted by an earlier run or request), "computed" (placed
// by this request — and now persisted for the next one), or "predicted"
// (interpolated over the trained landscape; an estimate with no content
// key, flagged by the Predicted marker).
type PlaceResponse struct {
	Source    string       `json:"source"`
	Predicted bool         `json:"predicted,omitempty"`
	Result    store.Result `json:"result"`
}

// QueryResponse lists stored cells matching a filter.
type QueryResponse struct {
	Count   int            `json:"count"`
	Results []store.Result `json:"results"`
}

// CellResponse is one cell lookup.
type CellResponse struct {
	Source string       `json:"source"`
	Result store.Result `json:"result"`
}

// ReplicateResponse acknowledges one /v1/replicate write.
type ReplicateResponse struct {
	Stored bool   `json:"stored"`
	Key    string `json:"key"`
}

// DigestResponse is the /v1/digest payload: the store's key count and
// order-independent key-set digest (store.DigestKeys), plus — when the
// request asked with ?keys=1 — the canonical key strings themselves.
// Cluster anti-entropy compares digests first and exchanges key lists
// only when they differ.
type DigestResponse struct {
	Count  int      `json:"count"`
	Digest string   `json:"digest"`
	Keys   []string `json:"keys,omitempty"`
}

// SlowResponse is the /v1/slow payload: the most recent slow requests
// (newest first) and the all-time count, including evicted entries.
type SlowResponse struct {
	Total    int64           `json:"total"`
	Requests []obs.SlowEntry `json:"requests"`
}

// apiError is an error with an HTTP status.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// Server serves one placement backend over HTTP. Create with New (over a
// store) or NewBackendServer (over any backend), mount via Handler, or
// run with Serve / ListenAndServe.
type Server struct {
	b       backend.Backend
	opts    Options
	owned   *backend.Predictive      // set when New wrapped the backend itself
	lru     *lruCache[store.Result]  // content key -> response
	keys    *lruCache[store.CellKey] // request key -> content key shortcut
	flights *flightGroup
	c       counters
	mux     *http.ServeMux
	h       http.Handler // mux wrapped in the tracing middleware
	obs     *obs.Registry
	slow    *obs.SlowRing
	journal *obs.Journal
	slo     *obs.SLOEngine

	// healthState is the last /v1/health status served, for journaling
	// ok→degraded→critical transitions exactly once each.
	healthMu    sync.Mutex
	healthState string
}

// New builds a Server over an open store: a Local backend when the store
// is writable (a computed cell persists), a read-only Store backend when
// it was opened with OpenReadOnly (/v1/place then serves hits and answers
// 403 for cells that would need computing).
func New(st *store.Store, opts Options) *Server {
	var b backend.Backend
	if st.ReadOnly() {
		b = backend.NewStore(st)
	} else {
		b = backend.NewLocal(st, backend.LocalOptions{
			Workers:     opts.Workers,
			MaxInflight: opts.MaxInflight,
			OnPlace:     opts.OnPlace,
		})
	}
	var owned *backend.Predictive
	if opts.Predict {
		pb := backend.NewPredictive(b, backend.PredictiveOptions{
			Predict: opts.PredictOptions,
			Refine:  opts.PredictRefine,
		})
		pb.Train(b.Query(sweep.Filter{}))
		b, owned = pb, pb
	}
	s := NewBackendServer(b, opts)
	s.owned = owned
	return s
}

// NewBackendServer builds a Server over any placement backend — a remote
// daemon, a consistent-hash cluster — adding the HTTP skin: LRU response
// cache, singleflight coalescing, JSON endpoints. Options.Workers,
// MaxInflight and OnPlace are ignored (they configure a backend New
// would build).
func NewBackendServer(b backend.Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		b:           b,
		opts:        opts,
		lru:         newLRU[store.Result](opts.CacheSize),
		keys:        newLRU[store.CellKey](opts.CacheSize),
		flights:     newFlightGroup(),
		mux:         http.NewServeMux(),
		obs:         obs.NewRegistryWindows(opts.Windows),
		slow:        obs.NewSlowRing(opts.SlowRingSize),
		journal:     opts.Journal,
		healthState: HealthOK,
	}
	if len(opts.Objectives) > 0 {
		s.slo = obs.NewSLOEngine(opts.Objectives, obs.SLOConfig{
			PageBurn:    opts.SLOPageBurn,
			MinInterval: opts.SLOMinInterval,
			Journal:     s.journal,
		})
		// Pre-create the serving-layer stages error-rate objectives read,
		// so an error-free server evaluates them against an empty local
		// window instead of falling through to a backend stats fan-out.
		for _, o := range opts.Objectives {
			if o.Kind == obs.ObjectiveErrorRate && strings.HasPrefix(o.Stage, "http") {
				s.obs.Hist(o.Stage)
				s.obs.Hist(o.Stage + obs.ErrorsSuffix)
			}
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/cell", s.handleCell)
	s.mux.HandleFunc("GET /v1/summary", s.handleSummary)
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("POST /v1/replicate", s.handleReplicate)
	s.mux.HandleFunc("GET /v1/digest", s.handleDigest)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/slow", s.handleSlow)
	s.mux.HandleFunc("GET /v1/health", s.handleHealthReport)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/watch", s.handleWatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.h = s.traced(s.mux)
	return s
}

// traced is the edge middleware every request crosses: it accepts a
// caller-supplied X-Request-ID (or mints one), attaches a Trace to the
// request context — the same trace backend stages observe into — echoes
// the ID on the response, records the endpoint's latency histogram,
// emits the structured request log, and retains slow requests in the
// /v1/slow ring.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set(obs.RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		d := time.Since(t0)

		ep := endpointLabel(r.URL.Path)
		s.obs.Hist("http_" + ep).Record(d)
		s.obs.Hist(obs.DefaultSLOStage).Record(d)
		// Server-side failures (5xx) feed the error-rate SLO stages;
		// client errors (4xx) are the caller's fault and don't burn
		// budget. /v1/health is exempt: its 503 *reports* a paging
		// objective, and counting it as an error would keep the budget
		// burning on probe traffic alone.
		if sw.status >= http.StatusInternalServerError && ep != "health" {
			s.obs.Hist("http_" + ep + obs.ErrorsSuffix).Inc()
			s.obs.Hist(obs.DefaultSLOStage + obs.ErrorsSuffix).Inc()
		}
		attrs := tr.Attrs()
		if s.opts.Logger != nil {
			args := make([]any, 0, 12+len(attrs))
			args = append(args, "id", id, "endpoint", ep, "method", r.Method,
				"status", sw.status, "dur", d)
			for i := 0; i+1 < len(attrs); i += 2 {
				args = append(args, attrs[i], attrs[i+1])
			}
			if st := tr.Stages(); len(st) > 0 {
				args = append(args, "stages", stagesString(st))
			}
			s.opts.Logger.Info("request", args...)
		}
		if s.opts.SlowThreshold > 0 && d >= s.opts.SlowThreshold {
			e := obs.SlowEntry{
				ID:       id,
				Endpoint: ep,
				Status:   sw.status,
				Start:    t0,
				DurNS:    int64(d),
				Stages:   tr.Stages(),
			}
			for i := 0; i+1 < len(attrs); i += 2 {
				switch attrs[i] {
				case "key", "spec":
					e.Detail = attrs[i+1]
				case "source":
					e.Source = attrs[i+1]
				}
			}
			s.slow.Add(e)
		}
	})
}

// statusWriter captures the handler's status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush passes streaming flushes through to the wrapped writer, so the
// SSE handler behind the middleware can push events incrementally.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// endpointLabel maps a request path to its histogram/log label:
// "/v1/place" -> "place", "/healthz" -> "healthz".
func endpointLabel(path string) string {
	p := strings.TrimPrefix(path, "/v1/")
	p = strings.Trim(p, "/")
	if p == "" {
		return "root"
	}
	return strings.ReplaceAll(p, "/", "_")
}

// stagesString renders stage timings as "solve=12.3ms store_write=80µs"
// for the request log.
func stagesString(st []obs.StageTiming) string {
	var b strings.Builder
	for i, t := range st {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", t.Stage, time.Duration(t.DurNS))
	}
	return b.String()
}

// Backend exposes the backend the server fronts.
func (s *Server) Backend() backend.Backend { return s.b }

// Handler returns the server's HTTP handler (for tests and embedding),
// tracing middleware included.
func (s *Server) Handler() http.Handler { return s.h }

// Stats snapshots the counters: the HTTP layer's own (requests, LRU
// hits, coalesces) merged with the backend's (store gauges, hit/compute/
// reject counts).
func (s *Server) Stats() Stats {
	bs := s.b.Stats()
	return Stats{
		Backend:       bs.Backend,
		StoreCells:    bs.Cells,
		MemoEntries:   bs.MemoEntries,
		ReadOnly:      bs.ReadOnly,
		Queries:       s.c.queries.Load(),
		CellLookups:   s.c.cells.Load(),
		PlaceRequests: s.c.places.Load(),
		CacheHits:     s.c.cacheHits.Load(),
		CacheMisses:   s.c.cacheMisses.Load(),
		StoreHits:     bs.StoreHits,
		MemoHits:      bs.MemoHits,
		Coalesced:     s.c.coalesced.Load(),
		Computed:      bs.Computed,
		Rejected:      bs.Rejected,
		InFlight:      bs.InFlight,
		CachedEntries: s.lru.len(),

		Predicted:        bs.Predicted,
		PredictFallbacks: bs.PredictFallbacks,
		Refined:          bs.Refined,
		RefineDropped:    bs.RefineDropped,
		Surfaces:         bs.Surfaces,
		SurfaceSamples:   bs.SurfaceSamples,

		Replications:  s.c.replications.Load(),
		ReplicaFactor: bs.ReplicaFactor,
		Replicated:    bs.Replicated,
		ReadRepairs:   bs.ReadRepairs,
		HintsQueued:   bs.HintsQueued,
		HintsDrained:  bs.HintsDrained,
		HintsDropped:  bs.HintsDropped,
		HintsPending:  bs.HintsPending,
		Healed:        bs.Healed,
		HealSweeps:    bs.HealSweeps,

		Replicas: bs.Replicas,

		SlowRequests: s.slow.Total(),
		// Copy before merging: bs.Stages is the backend's own snapshot map.
		Stages:  obs.MergeStages(obs.MergeStages(nil, bs.Stages), s.obs.Snapshot()),
		Windows: obs.MergeWindows(obs.MergeWindows(nil, bs.Windows), s.obs.Windows()),
	}
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: no new connections, in-flight requests (and therefore
// in-flight computations, which run inside their leader's handler) drain
// within DrainTimeout. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if s.owned != nil {
		defer s.owned.Close() // stop the refinement worker with the server
	}
	srv := &http.Server{Handler: s.h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	//nolint:ctxflow // ctx is already cancelled here; the drain deadline must outlive it
	drain, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve. notify, when non-nil,
// receives the bound address before serving starts — how callers (and the
// smoke test) learn the port when addr ends in ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, notify func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if notify != nil {
		notify(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

// handleHealth answers liveness from the server alone — no backend
// stats call, so a cluster-front daemon's health never depends on (or
// waits for) its downstream replicas. Cell counts live in /v1/stats.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleSlow serves the bounded ring of recent slow requests, newest
// first — the "what just hurt" view with each request's ID, endpoint,
// status and per-stage breakdown.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, SlowResponse{Total: s.slow.Total(), Requests: entries})
}

// handleMetrics renders the counters, stage histograms, SLO burn gauges
// and the health gauge in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	scalars := []obs.Metric{
		{Name: "lowlat_store_cells", Kind: "gauge", Help: "Cells in the backend's visible store.", Value: float64(st.StoreCells)},
		{Name: "lowlat_memo_entries", Kind: "gauge", Help: "Calibration memo entries in the backend's visible store.", Value: float64(st.MemoEntries)},
		{Name: "lowlat_queries_total", Kind: "counter", Help: "Query and summary requests served.", Value: float64(st.Queries)},
		{Name: "lowlat_cell_lookups_total", Kind: "counter", Help: "Cell lookups served.", Value: float64(st.CellLookups)},
		{Name: "lowlat_place_requests_total", Kind: "counter", Help: "Place requests accepted.", Value: float64(st.PlaceRequests)},
		{Name: "lowlat_cache_hits_total", Kind: "counter", Help: "Requests answered by the server's LRU.", Value: float64(st.CacheHits)},
		{Name: "lowlat_cache_misses_total", Kind: "counter", Help: "Requests that consulted the LRU and fell through.", Value: float64(st.CacheMisses)},
		{Name: "lowlat_store_hits_total", Kind: "counter", Help: "Places answered from persisted cells.", Value: float64(st.StoreHits)},
		{Name: "lowlat_memo_hits_total", Kind: "counter", Help: "Places that derived their key from the calibration memo.", Value: float64(st.MemoHits)},
		{Name: "lowlat_coalesced_total", Kind: "counter", Help: "Places that joined another request's in-flight computation.", Value: float64(st.Coalesced)},
		{Name: "lowlat_computed_total", Kind: "counter", Help: "Placement engine invocations.", Value: float64(st.Computed)},
		{Name: "lowlat_rejected_total", Kind: "counter", Help: "Places refused by admission control (429).", Value: float64(st.Rejected)},
		{Name: "lowlat_in_flight", Kind: "gauge", Help: "Currently admitted computations.", Value: float64(st.InFlight)},
		{Name: "lowlat_cached_entries", Kind: "gauge", Help: "Entries in the server's LRU response cache.", Value: float64(st.CachedEntries)},
		{Name: "lowlat_predicted_total", Kind: "counter", Help: "Places answered by the interpolation fast path.", Value: float64(st.Predicted)},
		{Name: "lowlat_predict_fallbacks_total", Kind: "counter", Help: "Predict-path requests handed to the exact path.", Value: float64(st.PredictFallbacks)},
		{Name: "lowlat_replications_total", Kind: "counter", Help: "Cells accepted through /v1/replicate.", Value: float64(st.Replications)},
		{Name: "lowlat_replicated_total", Kind: "counter", Help: "Replication copies pushed to secondary owners.", Value: float64(st.Replicated)},
		{Name: "lowlat_healed_total", Kind: "counter", Help: "Cells copied onto owners by anti-entropy sweeps.", Value: float64(st.Healed)},
		{Name: "lowlat_slow_requests_total", Kind: "counter", Help: "Requests that crossed the slow threshold.", Value: float64(st.SlowRequests)},
	}
	h := s.Health()
	scalars = append(scalars,
		obs.Metric{Name: "lowlat_health", Kind: "gauge",
			Help: "Serving health: 0 ok, 1 degraded, 2 critical.", Value: float64(healthValue(h.Status))},
		obs.Metric{Name: "lowlat_down_replicas", Kind: "gauge",
			Help: "Replicas currently marked down behind this front.", Value: float64(len(h.DownReplicas))})
	for _, so := range h.SLOs {
		lbl := [][2]string{{"objective", so.Objective}}
		scalars = append(scalars,
			obs.Metric{Name: "lowlat_slo_state", Kind: "gauge", Labels: lbl,
				Help: "SLO state per objective: 0 ok, 1 warn, 2 page.", Value: float64(sloValue(so.State))},
			obs.Metric{Name: "lowlat_slo_burn_long", Kind: "gauge", Labels: lbl,
				Help: "Error-budget burn rate over the objective's stated window.", Value: so.BurnLong},
			obs.Metric{Name: "lowlat_slo_burn_short", Kind: "gauge", Labels: lbl,
				Help: "Error-budget burn rate over the short confirmation window.", Value: so.BurnShort},
			obs.Metric{Name: "lowlat_slo_budget_remaining", Kind: "gauge", Labels: lbl,
				Help: "Fraction of the objective's error budget left in its window.", Value: so.BudgetRemaining})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteMetrics(w, "lowlat", scalars, st.Stages)
}

// healthValue maps a health status to its gauge value.
func healthValue(status string) int {
	switch status {
	case HealthCritical:
		return 2
	case HealthDegraded:
		return 1
	default:
		return 0
	}
}

// sloValue maps an SLO state to its gauge value.
func sloValue(st obs.SLOState) int {
	switch st {
	case obs.SLOPage:
		return 2
	case obs.SLOWarn:
		return 1
	default:
		return 0
	}
}

// parseFilter builds a sweep.Filter from query parameters. Like the CLI,
// presence (not a sentinel value) decides whether seed/headroom filter.
func parseFilter(r *http.Request) (sweep.Filter, error) {
	q := r.URL.Query()
	f := sweep.Filter{
		Net:    q.Get("net"),
		Class:  q.Get("class"),
		Scheme: q.Get("scheme"),
	}
	if q.Has("seed") {
		v, err := strconv.ParseInt(q.Get("seed"), 10, 64)
		if err != nil {
			return f, errf(http.StatusBadRequest, "bad seed %q", q.Get("seed"))
		}
		f.Seed = &v
	}
	if q.Has("headroom") {
		v, err := strconv.ParseFloat(q.Get("headroom"), 64)
		if err != nil {
			return f, errf(http.StatusBadRequest, "bad headroom %q", q.Get("headroom"))
		}
		f.Headroom = &v
	}
	return f, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.c.queries.Add(1)
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, err)
		return
	}
	results := s.b.Query(f)
	if results == nil {
		results = []store.Result{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Count: len(results), Results: results})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	s.c.queries.Add(1)
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, err)
		return
	}
	points := 11
	if v := r.URL.Query().Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 || n > 1001 {
			writeError(w, errf(http.StatusBadRequest, "bad points %q (want 2..1001)", v))
			return
		}
		points = n
	}
	writeJSON(w, http.StatusOK, Summarize(s.b.Query(f), points))
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	s.c.cells.Add(1)
	keyStr := r.URL.Query().Get("key")
	key, err := store.ParseCellKey(keyStr)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	ks := key.String()
	tr := obs.TraceFrom(r.Context())
	tr.Annotate("key", ks)
	if res, ok := s.lru.get(ks); ok {
		s.c.cacheHits.Add(1)
		tr.Annotate("source", "cache")
		writeJSON(w, http.StatusOK, CellResponse{Source: "cache", Result: res})
		return
	}
	s.c.cacheMisses.Add(1)
	res, ok := s.b.Lookup(key)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "cell %s not stored", ks))
		return
	}
	s.lru.add(ks, res)
	tr.Annotate("source", "store")
	writeJSON(w, http.StatusOK, CellResponse{Source: "store", Result: res})
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	s.c.places.Add(1)
	var req PlaceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return
	}
	locality := 1.0
	if req.Locality != nil {
		locality = *req.Locality
	}
	spec := store.CellSpec{
		Net:      req.Net,
		Seed:     req.Seed,
		Scheme:   req.Scheme,
		Headroom: req.Headroom,
		Load:     req.Load,
		Locality: locality,
	}.Normalized()
	// Cheap validation up front: a malformed request answers 400 without
	// touching the coalescing layer or the backend. Net-term resolution
	// (graph construction) stays inside the flight.
	if _, err := backend.CheckSpec(spec); err != nil {
		writeError(w, err)
		return
	}

	rk := spec.String()
	tr := obs.TraceFrom(r.Context())
	tr.Annotate("spec", rk)
	// Hot path: a request key served before maps straight to its content
	// key — LRU lookup with no graph build, no flight.
	if ck, ok := s.keys.get(rk); ok {
		if res, hit := s.lru.get(ck.String()); hit {
			s.c.cacheHits.Add(1)
			tr.Annotate("source", "cache")
			writeJSON(w, http.StatusOK, PlaceResponse{Source: "cache", Result: res})
			return
		}
	}
	s.c.cacheMisses.Add(1)

	out, err := s.flights.do(r.Context(), rk,
		func() (outcome, error) { return s.placeMiss(tr, rk, spec) },
		func() { s.c.coalesced.Add(1) })
	if err != nil {
		writeError(w, err)
		return
	}
	tr.Annotate("source", out.source)
	writeJSON(w, http.StatusOK, PlaceResponse{
		Source:    out.source,
		Predicted: out.source == string(backend.SourcePredicted),
		Result:    out.result,
	})
}

// placeMiss resolves one place request as the leader of its flight: one
// backend dispatch, then the LRU and key-shortcut caches warm for the
// next request. The dispatch deliberately does not inherit the leader's
// request context — the leader computes for its followers, so a
// disconnecting leader must not abort the flight — but it is bounded by
// PlaceTimeout so a blackholed downstream cannot pin the flight (and
// its request key) forever. The leader's trace rides along explicitly
// (cancellation is severed, observability is not), so backend stage
// timings land on the leader's log line and the request ID reaches
// downstream daemons.
func (s *Server) placeMiss(tr *obs.Trace, rk string, spec store.CellSpec) (outcome, error) {
	ctx, cancel := context.WithTimeout(obs.WithTrace(context.Background(), tr), s.opts.PlaceTimeout)
	defer cancel()
	res, src, err := backend.PlaceSourced(ctx, s.b, spec)
	if err != nil {
		return outcome{}, err
	}
	// Predicted answers carry no content key: caching one under the zero
	// key would collide every predicted response onto a single LRU slot
	// (and serve request A's estimate to request B). Estimates stay
	// uncached; the index itself is the fast path.
	if res.Key != (store.CellKey{}) {
		s.keys.add(rk, res.Key)
		s.lru.add(res.Key.String(), res)
	}
	return outcome{source: string(src), result: res}, nil
}

// handleReplicate accepts one already-computed cell from a cluster peer
// — the write half of replication and anti-entropy healing. The body is
// the cell's canonical wire form (store.MarshalResult bytes); a keyless
// record is rejected as corruption, and a backend that accepts no writes
// (read-only mount, remote proxy without the extension) answers 403. An
// accepted cell warms the LRU, so a healed cell serves hot immediately.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "read body: %v", err))
		return
	}
	res, err := store.UnmarshalResult(body)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	pt, ok := s.b.(backend.Putter)
	if !ok {
		writeError(w, fmt.Errorf("backend accepts no replicated writes: %w", backend.ErrNotStored))
		return
	}
	if err := pt.Put(res); err != nil {
		writeError(w, err)
		return
	}
	s.c.replications.Add(1)
	s.lru.add(res.Key.String(), res)
	writeJSON(w, http.StatusOK, ReplicateResponse{Stored: true, Key: res.Key.String()})
}

// handleDigest answers the store's key inventory: always the count and
// the order-independent key-set digest, and the full canonical key list
// when asked with ?keys=1. Two daemons holding equal key sets answer
// equal digests whatever order their stores filled in.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	kd, ok := s.b.(backend.KeyDigester)
	if !ok {
		writeError(w, errf(http.StatusNotImplemented, "backend digests no keys"))
		return
	}
	resp := DigestResponse{}
	if r.URL.Query().Get("keys") == "1" {
		kl, ok := s.b.(backend.KeyLister)
		if !ok {
			writeError(w, errf(http.StatusNotImplemented, "backend enumerates no keys"))
			return
		}
		keys, err := kl.Keys(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Count = len(keys)
		resp.Digest = store.DigestKeys(keys).String()
		resp.Keys = make([]string, len(keys))
		for i, k := range keys {
			resp.Keys[i] = k.String()
		}
	} else {
		d, n, err := kd.KeyDigest(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Count = n
		resp.Digest = d.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON encodes v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode failure here means the connection is gone; the status is
	// already committed, so there is nothing useful left to report.
	_ = enc.Encode(v)
}

// writeError renders an error as {"error": ...} with its HTTP status.
// Backend error kinds map onto the API's status contract — overload to
// 429, refuse-to-compute to 403, bad specs to 400, unreachable
// downstreams to 502 — and a StatusError from a proxied daemon passes its
// code through, so a front daemon re-renders its cluster's answers
// faithfully.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var ae *apiError
	var se *StatusError
	var spe *backend.SpecError
	switch {
	case errors.As(err, &ae):
		code = ae.code
	case errors.As(err, &se):
		code = se.Code
	case errors.As(err, &spe):
		code = http.StatusBadRequest
	case errors.Is(err, backend.ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, backend.ErrNotStored), errors.Is(err, store.ErrReadOnly):
		code = http.StatusForbidden
	case errors.Is(err, backend.ErrUnavailable):
		code = http.StatusBadGateway
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
