// Package serve is the query-serving daemon layer: a long-running HTTP
// API over a persistent result store, turning the batch landscape study
// into an online service — the operator's "how latency-capable is my
// topology, and what does scheme X buy me?" asked as a request instead of
// a sweep. Related always-on systems (cISP's latency service, the
// latency-aware inter-domain routing daemon) answer path/latency queries
// the same way: mostly from precomputed state, computing on demand when a
// query misses.
//
// The server mounts one store and answers JSON queries: cell lookup and
// filtered listing (/v1/cell, /v1/query, reusing sweep.Filter), aggregate
// per-class CDF summaries (/v1/summary), and on-demand placement
// (/v1/place) that computes store-missing cells through the engine over a
// shared solver cache and appends them to the store, so the next request
// — from any client — is a hit.
//
// The hot path is production-shaped rather than a bare mux:
//
//   - requests for the same content coalesce through a singleflight
//     group, so N concurrent misses on one cell trigger one computation;
//   - finished cells sit in a bounded LRU keyed by content key, ahead of
//     the store index;
//   - admitted computations are bounded by a semaphore — beyond it
//     /v1/place answers 429 immediately instead of queueing without
//     bound — and actual solves run on a bounded worker pool;
//   - shutdown drains in-flight work (http.Server.Shutdown semantics);
//   - /v1/stats exposes the hit/miss/coalesce/in-flight counters.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lowlat/internal/engine"
	"lowlat/internal/routing"
	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// Options tunes a Server. The zero value serves with defaults.
type Options struct {
	// Workers bounds concurrent engine work — matrix generation and
	// placement solves (0 = one per CPU). Workers:1 makes the compute
	// side fully sequential, which is what the coalescing acceptance
	// test runs under.
	Workers int
	// MaxInflight bounds how many place computations may be admitted at
	// once (computing or waiting for a worker); beyond it /v1/place
	// answers 429 Too Many Requests. Default 4x the resolved worker
	// count. Requests served from cache or store never consume a slot,
	// and neither do requests coalescing onto an admitted flight.
	MaxInflight int
	// CacheSize bounds the LRU response cache in entries (default 512).
	CacheSize int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is cancelled (default 15s).
	DrainTimeout time.Duration
	// OnPlace, when non-nil, runs just before each engine invocation —
	// the precise computation count, mirroring sweep.Options.OnPlace.
	// Tests hang invocation counting and deterministic barriers off it.
	OnPlace func(key store.CellKey)
}

func (o Options) withDefaults() Options {
	o.Workers = engine.DefaultWorkers(o.Workers)
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * o.Workers
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 512
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	return o
}

// Stats is the /v1/stats payload: monotonic counters since the server
// started, plus store gauges. Field order is the wire order.
type Stats struct {
	// StoreCells and MemoEntries gauge the mounted store.
	StoreCells  int  `json:"store_cells"`
	MemoEntries int  `json:"memo_entries"`
	ReadOnly    bool `json:"read_only"`
	// Queries, CellLookups and PlaceRequests count requests per endpoint.
	Queries       int64 `json:"queries"`
	CellLookups   int64 `json:"cell_lookups"`
	PlaceRequests int64 `json:"place_requests"`
	// CacheHits were answered by the LRU, StoreHits by the store index,
	// MemoHits derived their cell key from the calibration memo without
	// regenerating the matrix.
	CacheHits int64 `json:"cache_hits"`
	StoreHits int64 `json:"store_hits"`
	MemoHits  int64 `json:"memo_hits"`
	// Coalesced requests joined another request's in-flight computation;
	// Computed counts engine invocations; Rejected counts 429s.
	Coalesced int64 `json:"coalesced"`
	Computed  int64 `json:"computed"`
	Rejected  int64 `json:"rejected"`
	// InFlight gauges currently admitted computations; CachedEntries
	// gauges the LRU.
	InFlight      int64 `json:"in_flight"`
	CachedEntries int   `json:"cached_entries"`
}

// counters is the server's atomic counter block.
type counters struct {
	queries   atomic.Int64
	cells     atomic.Int64
	places    atomic.Int64
	cacheHits atomic.Int64
	storeHits atomic.Int64
	memoHits  atomic.Int64
	coalesced atomic.Int64
	computed  atomic.Int64
	rejected  atomic.Int64
	inflight  atomic.Int64
}

// PlaceRequest asks for one scenario cell by its coordinates. Net takes
// any single-network sweep grid term (a zoo name, "randomgeo:<n>:<seed>",
// "multiregion:<RxP>:<seed>").
type PlaceRequest struct {
	Net      string  `json:"net"`
	Seed     int64   `json:"seed"`
	Scheme   string  `json:"scheme"`
	Headroom float64 `json:"headroom,omitempty"`
	// Load is the target min-cut utilization (0 = the paper's 1/1.3).
	Load float64 `json:"load,omitempty"`
	// Locality is the traffic locality ℓ; nil = 1, explicit 0 = pure
	// gravity.
	Locality *float64 `json:"locality,omitempty"`
}

// PlaceResponse carries the cell and where it came from: "cache" (LRU),
// "store" (persisted by an earlier run or request), or "computed" (placed
// by this request — and now persisted for the next one).
type PlaceResponse struct {
	Source string       `json:"source"`
	Result store.Result `json:"result"`
}

// QueryResponse lists stored cells matching a filter.
type QueryResponse struct {
	Count   int            `json:"count"`
	Results []store.Result `json:"results"`
}

// CellResponse is one cell lookup.
type CellResponse struct {
	Source string       `json:"source"`
	Result store.Result `json:"result"`
}

// apiError is an error with an HTTP status.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// Server serves one result store over HTTP. Create with New, mount via
// Handler, or run with Serve / ListenAndServe.
type Server struct {
	st      *store.Store
	opts    Options
	solver  *routing.SolverCache
	lru     *lruCache[store.Result]  // content key -> response
	keys    *lruCache[store.CellKey] // request key -> content key shortcut
	flights *flightGroup
	sem     chan struct{} // admission slots (MaxInflight)
	work    chan struct{} // compute slots (Workers)
	c       counters
	mux     *http.ServeMux
}

// New builds a Server over an open store. The store may be writable (a
// computed cell persists) or read-only (OpenReadOnly; /v1/place then
// serves hits and answers 403 for cells that would need computing).
func New(st *store.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		st:      st,
		opts:    opts,
		solver:  routing.NewSolverCache(),
		lru:     newLRU[store.Result](opts.CacheSize),
		keys:    newLRU[store.CellKey](opts.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, opts.MaxInflight),
		work:    make(chan struct{}, opts.Workers),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/cell", s.handleCell)
	s.mux.HandleFunc("GET /v1/summary", s.handleSummary)
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		StoreCells:    s.st.Len(),
		MemoEntries:   s.st.MemoLen(),
		ReadOnly:      s.st.ReadOnly(),
		Queries:       s.c.queries.Load(),
		CellLookups:   s.c.cells.Load(),
		PlaceRequests: s.c.places.Load(),
		CacheHits:     s.c.cacheHits.Load(),
		StoreHits:     s.c.storeHits.Load(),
		MemoHits:      s.c.memoHits.Load(),
		Coalesced:     s.c.coalesced.Load(),
		Computed:      s.c.computed.Load(),
		Rejected:      s.c.rejected.Load(),
		InFlight:      s.c.inflight.Load(),
		CachedEntries: s.lru.len(),
	}
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: no new connections, in-flight requests (and therefore
// in-flight computations, which run inside their leader's handler) drain
// within DrainTimeout. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve. notify, when non-nil,
// receives the bound address before serving starts — how callers (and the
// smoke test) learn the port when addr ends in ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, notify func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if notify != nil {
		notify(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "store_cells": s.st.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// parseFilter builds a sweep.Filter from query parameters. Like the CLI,
// presence (not a sentinel value) decides whether seed/headroom filter.
func parseFilter(r *http.Request) (sweep.Filter, error) {
	q := r.URL.Query()
	f := sweep.Filter{
		Net:    q.Get("net"),
		Class:  q.Get("class"),
		Scheme: q.Get("scheme"),
	}
	if q.Has("seed") {
		v, err := strconv.ParseInt(q.Get("seed"), 10, 64)
		if err != nil {
			return f, errf(http.StatusBadRequest, "bad seed %q", q.Get("seed"))
		}
		f.Seed = &v
	}
	if q.Has("headroom") {
		v, err := strconv.ParseFloat(q.Get("headroom"), 64)
		if err != nil {
			return f, errf(http.StatusBadRequest, "bad headroom %q", q.Get("headroom"))
		}
		f.Headroom = &v
	}
	return f, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.c.queries.Add(1)
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, err)
		return
	}
	results := sweep.Query(s.st, f)
	if results == nil {
		results = []store.Result{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Count: len(results), Results: results})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	s.c.queries.Add(1)
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, err)
		return
	}
	points := 11
	if v := r.URL.Query().Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 || n > 1001 {
			writeError(w, errf(http.StatusBadRequest, "bad points %q (want 2..1001)", v))
			return
		}
		points = n
	}
	writeJSON(w, http.StatusOK, Summarize(sweep.Query(s.st, f), points))
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	s.c.cells.Add(1)
	keyStr := r.URL.Query().Get("key")
	key, err := store.ParseCellKey(keyStr)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	ks := key.String()
	if res, ok := s.lru.get(ks); ok {
		s.c.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, CellResponse{Source: "cache", Result: res})
		return
	}
	res, ok := s.st.Get(key)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "cell %s not stored", ks))
		return
	}
	s.c.storeHits.Add(1)
	s.lru.add(ks, res)
	writeJSON(w, http.StatusOK, CellResponse{Source: "store", Result: res})
}

// reqKey canonicalizes a validated place request for coalescing: requests
// that would compute the same cell collide on the same flight before any
// graph or matrix exists to digest.
func reqKey(req PlaceRequest, load, locality float64) string {
	return fmt.Sprintf("%s|%d|%s|%g|%g|%g", req.Net, req.Seed, req.Scheme, req.Headroom, load, locality)
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	s.c.places.Add(1)
	var req PlaceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return
	}
	if req.Net == "" || req.Scheme == "" {
		writeError(w, errf(http.StatusBadRequest, "net and scheme are required"))
		return
	}
	if req.Headroom < 0 || req.Headroom >= 1 {
		writeError(w, errf(http.StatusBadRequest, "bad headroom %g (want 0 <= h < 1)", req.Headroom))
		return
	}
	scheme, err := routing.ByName(req.Scheme, req.Headroom)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v (have %v)", err, routing.SchemeNames()))
		return
	}
	load := req.Load
	if load < 0 || load > 1 {
		writeError(w, errf(http.StatusBadRequest, "bad load %g (want 0 < l <= 1)", req.Load))
		return
	}
	if load == 0 {
		load = 1 / 1.3
	}
	locality := 1.0
	if req.Locality != nil {
		locality = *req.Locality
	}
	if locality < 0 {
		writeError(w, errf(http.StatusBadRequest, "bad locality %g", locality))
		return
	}

	rk := reqKey(req, load, locality)
	// Hot path: a request key served before maps straight to its content
	// key — LRU lookup with no graph build, no flight.
	if ck, ok := s.keys.get(rk); ok {
		if res, hit := s.lru.get(ck.String()); hit {
			s.c.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, PlaceResponse{Source: "cache", Result: res})
			return
		}
	}

	out, err := s.flights.do(r.Context(), rk,
		func() (outcome, error) { return s.placeMiss(rk, req, scheme, load, locality) },
		func() { s.c.coalesced.Add(1) })
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{Source: out.source, Result: out.result})
}

// placeMiss resolves one place request as the leader of its flight:
// derive the cell key as cheaply as possible (calibration memo before
// matrix generation), serve LRU/store hits without consuming a
// computation slot, and otherwise generate + place under the admission
// semaphore and worker pool, persisting the result.
func (s *Server) placeMiss(rk string, req PlaceRequest, scheme routing.Scheme, load, locality float64) (outcome, error) {
	spec, err := sweep.ResolveNet(req.Net)
	if err != nil {
		return outcome{}, errf(http.StatusBadRequest, "%v", err)
	}
	g := spec.Graph

	// Calibration memo: the stored matrix digest yields the content key
	// without re-running the generation LPs — daemon warm-up over a store
	// a sweep filled stays compute-free. A memo hit only counts when it
	// actually spared the generation, i.e. when the cell itself is held;
	// otherwise the fall-through pays the solves regardless.
	if md, ok := s.st.Memo(store.MemoKeyFor(g, req.Seed, load, locality)); ok {
		ck := store.CellKey{
			Graph:  store.Digest(g.Fingerprint()),
			Matrix: md,
			Scheme: scheme.Name(),
			Config: store.ConfigDigest(scheme),
		}
		s.keys.add(rk, ck)
		ks := ck.String()
		if res, hit := s.lru.get(ks); hit {
			s.c.memoHits.Add(1)
			s.c.cacheHits.Add(1)
			return outcome{source: "cache", result: res}, nil
		}
		if res, hit := s.st.Get(ck); hit {
			s.c.memoHits.Add(1)
			s.c.storeHits.Add(1)
			s.lru.add(ks, res)
			return outcome{source: "store", result: res}, nil
		}
	}

	// The cell needs computing (or at least its matrix generating, which
	// costs the same calibration solves): admission-control it.
	if s.st.ReadOnly() {
		return outcome{}, errf(http.StatusForbidden,
			"store is read-only: cell for %s is not stored and cannot be computed", req.Net)
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.c.rejected.Add(1)
		return outcome{}, errf(http.StatusTooManyRequests,
			"computation limit reached (%d in flight); retry later", s.opts.MaxInflight)
	}
	defer func() { <-s.sem }()
	s.c.inflight.Add(1)
	defer s.c.inflight.Add(-1)

	// Worker slot: bounds actual engine work to Workers, however many
	// computations were admitted.
	s.work <- struct{}{}
	defer func() { <-s.work }()

	m, err := sweep.GenerateMatrix(g, req.Seed, load, locality, s.st)
	if err != nil {
		return outcome{}, errf(http.StatusInternalServerError, "generate matrix: %v", err)
	}
	ck := store.KeyFor(g, m, scheme)
	s.keys.add(rk, ck)
	ks := ck.String()
	// A store predating its memo can hold the cell even on a memo miss.
	if res, hit := s.st.Get(ck); hit {
		s.c.storeHits.Add(1)
		s.lru.add(ks, res)
		return outcome{source: "store", result: res}, nil
	}

	res, err := s.compute(sweep.Cell{
		Key: ck,
		Meta: store.Meta{
			Net:      spec.Name,
			Class:    spec.Class,
			Seed:     req.Seed,
			Scheme:   scheme.Name(),
			Headroom: routing.Headroom(scheme),
			Load:     load,
			Locality: locality,
		},
		Scenario: engine.Scenario{
			Tag:    fmt.Sprintf("%s/s%d/%s", spec.Name, req.Seed, scheme.Name()),
			Graph:  g,
			Matrix: m,
			Scheme: scheme,
		},
	})
	if err != nil {
		return outcome{}, errf(http.StatusInternalServerError, "%v", err)
	}
	if err := s.st.Put(res); err != nil {
		return outcome{}, errf(http.StatusInternalServerError, "persist cell: %v", err)
	}
	s.lru.add(ks, res)
	return outcome{source: "computed", result: res}, nil
}

// compute runs one placement through the engine (panic recovery: a solver
// crash surfaces as a 500, not a dead daemon) against the server's shared
// solver cache.
func (s *Server) compute(c sweep.Cell) (store.Result, error) {
	out := <-engine.Stream(context.Background(), 1, []sweep.Cell{c},
		func(_ context.Context, _ int, c sweep.Cell) (store.Result, error) {
			if s.opts.OnPlace != nil {
				s.opts.OnPlace(c.Key)
			}
			s.c.computed.Add(1)
			p, err := s.solver.Place(c.Scenario.Scheme, c.Scenario.Graph, c.Scenario.Matrix)
			if err != nil {
				return store.Result{}, fmt.Errorf("%s: %w", c.Scenario.Tag, err)
			}
			return store.Result{Key: c.Key, Meta: c.Meta, Metrics: store.MetricsOf(p)}, nil
		})
	return out.Value, out.Err
}

// writeJSON encodes v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode failure here means the connection is gone; the status is
	// already committed, so there is nothing useful left to report.
	_ = enc.Encode(v)
}

// writeError renders an error as {"error": ...} with its HTTP status
// (500 for errors that don't carry one).
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		code = ae.code
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
