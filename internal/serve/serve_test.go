package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// Note: this suite runs on the project's 1-CPU CI box; scenarios stay on
// the tiny star-6/ring-8 networks so the whole file finishes in seconds,
// and nothing here assumes a second core — concurrency is exercised with
// goroutines against Workers:1 servers.

// newTestServer wires a Server over st into an httptest server and a
// Client talking to it.
func newTestServer(t *testing.T, st *store.Store, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(st, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	return s, c
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.OpenSharded(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestKillAndCoalesce is the subsystem's acceptance test: with Workers:1,
// N concurrent /v1/place requests for one store-missing cell produce
// exactly one engine invocation, every request succeeds, the cell lands
// in the store, and a repeat request is served from the LRU with no new
// invocation.
func TestKillAndCoalesce(t *testing.T) {
	const clients = 8
	st := openStore(t)
	entered := make(chan store.CellKey, 1)
	release := make(chan struct{})
	var invocations atomic.Int64
	s, c := newTestServer(t, st, Options{
		Workers:     1,
		MaxInflight: 1,
		OnPlace: func(k store.CellKey) {
			invocations.Add(1)
			select {
			case entered <- k:
				<-release // hold the flight open so every client must coalesce
			default:
			}
		},
	})

	req := PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"}
	var wg sync.WaitGroup
	type reply struct {
		resp *PlaceResponse
		err  error
	}
	replies := make([]reply, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Place(context.Background(), req)
			replies[i] = reply{r, err}
		}(i)
	}

	// The leader is parked inside the engine invocation; every other
	// client must join its flight (or, if it arrives later, hit the
	// cache — either way no second invocation is possible). Wait until
	// the non-leaders are accounted for, then let the computation finish.
	key := <-entered
	deadline := time.After(10 * time.Second)
	for s.Stats().Coalesced < clients-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d clients coalesced; stats %+v", s.Stats().Coalesced, clients-1, s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.resp.Source != "computed" {
			t.Fatalf("client %d: source %q, want computed (coalesced onto one flight)", i, r.resp.Source)
		}
		if r.resp.Result.Key != key {
			t.Fatalf("client %d: key %v, want %v", i, r.resp.Result.Key, key)
		}
	}
	if n := invocations.Load(); n != 1 {
		t.Fatalf("%d engine invocations for one coalesced key, want exactly 1", n)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("computed cell did not land in the store")
	}

	// A repeat request is a cache hit: the hit counter moves, the
	// invocation counter does not.
	before := s.Stats().CacheHits
	again, err := c.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "cache" {
		t.Fatalf("repeat place source %q, want cache", again.Source)
	}
	if got := s.Stats().CacheHits; got != before+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before, got)
	}
	if n := invocations.Load(); n != 1 {
		t.Fatalf("repeat request re-invoked the engine (%d invocations)", n)
	}
	if got := s.Stats().Computed; got != 1 {
		t.Fatalf("stats computed = %d, want 1", got)
	}
}

// TestPlaceBackpressure pins the 429 contract: beyond MaxInflight
// admitted computations, a request for a distinct cell is rejected
// immediately, and succeeds once the slot frees.
func TestPlaceBackpressure(t *testing.T) {
	st := openStore(t)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, st, Options{
		Workers:     1,
		MaxInflight: 1,
		OnPlace: func(store.CellKey) {
			select {
			case entered <- struct{}{}:
				<-release
			default:
			}
		},
	})

	done := make(chan error, 1)
	go func() {
		_, err := c.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
		done <- err
	}()
	<-entered

	// The slot is held; a different cell cannot be admitted.
	_, err := c.Place(context.Background(), PlaceRequest{Net: "ring-8", Seed: 1, Scheme: "sp"})
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit place returned %v, want 429", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("held place failed: %v", err)
	}
	resp, err := c.Place(context.Background(), PlaceRequest{Net: "ring-8", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatalf("retry after 429 failed: %v", err)
	}
	if resp.Source != "computed" {
		t.Fatalf("retry source %q, want computed", resp.Source)
	}
}

func asStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

// TestParallelClientsRaceClean hammers the daemon from many goroutines
// over a mix of identical and distinct keys plus concurrent queries; run
// under -race this is the serving hot path's locking test. Every distinct
// key computes exactly once however the requests interleave.
func TestParallelClientsRaceClean(t *testing.T) {
	st := openStore(t)
	var invocations atomic.Int64
	perKey := make(map[store.CellKey]*atomic.Int64)
	var mu sync.Mutex
	_, c := newTestServer(t, st, Options{
		Workers:     1,
		MaxInflight: 64,
		OnPlace: func(k store.CellKey) {
			invocations.Add(1)
			mu.Lock()
			if perKey[k] == nil {
				perKey[k] = &atomic.Int64{}
			}
			perKey[k].Add(1)
			mu.Unlock()
		},
	})

	reqs := []PlaceRequest{
		{Net: "star-6", Seed: 1, Scheme: "sp"},
		{Net: "star-6", Seed: 2, Scheme: "sp"},
		{Net: "star-6", Seed: 1, Scheme: "minmax"},
		{Net: "ring-8", Seed: 1, Scheme: "sp"},
	}
	const perReq = 6
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs)*perReq+perReq)
	for _, r := range reqs {
		for i := 0; i < perReq; i++ {
			wg.Add(1)
			go func(r PlaceRequest) {
				defer wg.Done()
				if _, err := c.Place(context.Background(), r); err != nil {
					errs <- err
				}
			}(r)
		}
	}
	// Queries race the placements: the store index and LRU see
	// concurrent readers and writers.
	for i := 0; i < perReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Query(context.Background(), sweep.Filter{}); err != nil {
				errs <- err
			}
			if _, err := c.Stats(context.Background()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if len(perKey) != len(reqs) {
		t.Fatalf("%d distinct keys computed, want %d", len(perKey), len(reqs))
	}
	for k, n := range perKey {
		if n.Load() != 1 {
			t.Fatalf("key %v computed %d times, want exactly 1", k, n.Load())
		}
	}
	if st.Len() != len(reqs) {
		t.Fatalf("store holds %d cells, want %d", st.Len(), len(reqs))
	}
}

// TestPlaceServesSweptStoreViaMemo pins daemon warm-up over a store a
// sweep filled: the calibration memo yields the cell key without matrix
// regeneration, and the stored cell is served with zero engine work.
func TestPlaceServesSweptStoreViaMemo(t *testing.T) {
	st := openStore(t)
	grid := sweep.Grid{Nets: []string{"star-6"}, Seeds: []int64{1}, Schemes: []string{"sp"}}
	if _, err := sweep.Run(context.Background(), st, grid, sweep.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var invocations atomic.Int64
	s, c := newTestServer(t, st, Options{
		Workers: 1,
		OnPlace: func(store.CellKey) { invocations.Add(1) },
	})

	resp, err := c.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "store" {
		t.Fatalf("source %q, want store (memo-derived key, swept cell)", resp.Source)
	}
	if invocations.Load() != 0 {
		t.Fatal("serving a swept cell invoked the engine")
	}
	stats := s.Stats()
	if stats.MemoHits != 1 || stats.StoreHits != 1 || stats.Computed != 0 {
		t.Fatalf("stats %+v, want 1 memo hit, 1 store hit, 0 computed", stats)
	}

	// The same cell requested by key also round-trips.
	cell, err := c.Cell(context.Background(), resp.Result.Key.String())
	if err != nil {
		t.Fatal(err)
	}
	if cell != resp.Result {
		t.Fatalf("cell lookup %+v != place result %+v", cell, resp.Result)
	}
}

// TestPredictServeOption pins Options.Predict end to end through New: a
// daemon over a swept store trains at construction and answers an
// interior operating point by interpolation — no engine work, the
// predicted marker set, the counters visible in stats — while predicted
// estimates stay out of the LRU (they have no content key to cache
// under).
func TestPredictServeOption(t *testing.T) {
	st := openStore(t)
	for _, load := range []float64{0.6, 0.7} {
		grid := sweep.Grid{Nets: []string{"star-6"}, Seeds: []int64{1, 2}, Schemes: []string{"sp"}, Load: load}
		if _, err := sweep.Run(context.Background(), st, grid, sweep.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var invocations atomic.Int64
	s, c := newTestServer(t, st, Options{
		Workers: 1,
		Predict: true,
		OnPlace: func(store.CellKey) { invocations.Add(1) },
	})

	req := PlaceRequest{Net: "star-6", Seed: 5, Scheme: "sp", Load: 0.65}
	resp, err := c.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "predicted" || !resp.Predicted {
		t.Fatalf("source %q predicted=%v, want a predicted answer", resp.Source, resp.Predicted)
	}
	if resp.Result.Key != (store.CellKey{}) {
		t.Fatalf("predicted result carries content key %s", resp.Result.Key)
	}
	if invocations.Load() != 0 {
		t.Fatal("trained-region place invoked the engine")
	}

	// The repeat request is predicted again, not served from the LRU:
	// estimates are never cached.
	again, err := c.Place(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "predicted" {
		t.Fatalf("repeat source %q, want predicted", again.Source)
	}

	stats := s.Stats()
	if stats.Backend != "predictive+local" {
		t.Fatalf("stats backend %q", stats.Backend)
	}
	if stats.Predicted != 2 || stats.CacheHits != 0 || stats.CachedEntries != 0 {
		t.Fatalf("stats %+v, want 2 predicted, nothing cached", stats)
	}
	if stats.Surfaces != 1 || stats.SurfaceSamples != 4 {
		t.Fatalf("index gauges %d/%d, want 1 surface, 4 samples", stats.Surfaces, stats.SurfaceSamples)
	}

	// An untrained operating point exercises the exact path through the
	// same daemon and lands in the store as usual.
	far, err := c.Place(context.Background(), PlaceRequest{Net: "ring-8", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatal(err)
	}
	if far.Predicted || far.Source != "computed" {
		t.Fatalf("untrained net: source %q predicted=%v, want computed", far.Source, far.Predicted)
	}
	if invocations.Load() != 1 {
		t.Fatalf("%d invocations after one fallback, want 1", invocations.Load())
	}
	if got := s.Stats().PredictFallbacks; got != 1 {
		t.Fatalf("predict_fallbacks = %d, want 1", got)
	}
}

// TestReadOnlyStore pins the read-only daemon: stored cells serve, a cell
// that would need computing answers 403, and nothing is written.
func TestReadOnlyStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{Nets: []string{"star-6"}, Seeds: []int64{1}, Schemes: []string{"sp"}}
	if _, err := sweep.Run(context.Background(), st, grid, sweep.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	_, c := newTestServer(t, ro, Options{Workers: 1})

	resp, err := c.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "store" {
		t.Fatalf("read-only place source %q, want store", resp.Source)
	}

	_, err = c.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "minmax"})
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusForbidden {
		t.Fatalf("read-only compute returned %v, want 403", err)
	}
}

func TestPlaceValidation(t *testing.T) {
	st := openStore(t)
	_, c := newTestServer(t, st, Options{Workers: 1})
	neg := -1.0
	for name, req := range map[string]PlaceRequest{
		"missing net":    {Scheme: "sp"},
		"missing scheme": {Net: "star-6"},
		"unknown scheme": {Net: "star-6", Scheme: "frob"},
		"unknown net":    {Net: "no-such-net", Scheme: "sp"},
		"multi net":      {Net: "zoo", Scheme: "sp"},
		"bad headroom":   {Net: "star-6", Scheme: "ldr", Headroom: 1.5},
		"bad load":       {Net: "star-6", Scheme: "sp", Load: 7},
		"bad locality":   {Net: "star-6", Scheme: "sp", Locality: &neg},
	} {
		_, err := c.Place(context.Background(), req)
		var se *StatusError
		if !asStatus(err, &se) || se.Code != http.StatusBadRequest {
			t.Errorf("%s: %v, want 400", name, err)
		}
	}
	if _, err := c.Cell(context.Background(), "not-a-key"); err == nil {
		t.Error("bad cell key accepted")
	}
	var se *StatusError
	_, err := c.Cell(context.Background(), "g0000000000000000-m0000000000000000-c0000000000000000-sp")
	if !asStatus(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("missing cell returned %v, want 404", err)
	}
}

// TestGracefulDrain pins shutdown semantics: cancelling the serve context
// stops accepting but lets the in-flight computation finish and its
// response go out before Serve returns.
func TestGracefulDrain(t *testing.T) {
	st := openStore(t)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(st, Options{
		Workers:      1,
		DrainTimeout: 30 * time.Second,
		OnPlace: func(store.CellKey) {
			select {
			case entered <- struct{}{}:
				<-release
			default:
			}
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	c := NewClient("http://" + ln.Addr().String())
	placed := make(chan error, 1)
	go func() {
		_, err := c.Place(context.Background(), PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
		placed <- err
	}()
	<-entered

	cancel()
	select {
	case err := <-served:
		t.Fatalf("Serve returned before draining in-flight work: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-placed; err != nil {
		t.Fatalf("in-flight place failed during drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v after clean drain, want nil", err)
	}
}

// TestFlightPanicReleasesKey pins the daemon-survival property: a panic
// in a flight leader resolves the flight with an error for its followers
// and frees the key, so the next request for it runs fresh instead of
// joining a flight that will never finish.
func TestFlightPanicReleasesKey(t *testing.T) {
	g := newFlightGroup()
	follower := make(chan error, 1)
	started := make(chan struct{})
	joined := make(chan struct{})
	go func() {
		<-started
		_, err := g.do(context.Background(), "k", func() (outcome, error) {
			t.Error("follower became a leader while the panicking flight ran")
			return outcome{}, nil
		}, func() { close(joined) })
		follower <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		g.do(context.Background(), "k", func() (outcome, error) {
			close(started)
			<-joined // the follower is on this flight before it blows up
			panic("solver exploded")
		}, nil)
	}()

	if err := <-follower; err == nil {
		t.Fatal("follower of a panicked flight got a nil error")
	}
	// The key is free again: a fresh do() runs its own fn.
	ran := false
	if _, err := g.do(context.Background(), "k", func() (outcome, error) {
		ran = true
		return outcome{}, nil
	}, nil); err != nil || !ran {
		t.Fatalf("post-panic flight: ran=%v err=%v", ran, err)
	}
}

// --- golden responses ---

// goldenStore hand-inserts fixed cells (no solver involved) so the JSON
// bodies are stable bytes.
func goldenStore(t *testing.T) *store.Store {
	st := openStore(t)
	cells := []store.Result{
		{
			Key: store.CellKey{Graph: 0x0a, Matrix: 0x01, Scheme: "sp", Config: 0xf1},
			Meta: store.Meta{Net: "star-6", Class: "star", Seed: 1, Scheme: "sp",
				Load: 0.75, Locality: 1},
			Metrics: store.Metrics{Congested: 0.25, Stretch: 1.5, MaxStretch: 2, MaxUtil: 0.9, Fits: false},
		},
		{
			Key: store.CellKey{Graph: 0x0b, Matrix: 0x02, Scheme: "sp", Config: 0xf1},
			Meta: store.Meta{Net: "ring-8", Class: "ring", Seed: 1, Scheme: "sp",
				Load: 0.75, Locality: 1},
			Metrics: store.Metrics{Congested: 0, Stretch: 1.25, MaxStretch: 1.5, MaxUtil: 0.5, Fits: true},
		},
		{
			Key: store.CellKey{Graph: 0x0a, Matrix: 0x01, Scheme: "minmax", Config: 0xf2},
			Meta: store.Meta{Net: "star-6", Class: "star", Seed: 1, Scheme: "minmax",
				Load: 0.75, Locality: 1},
			Metrics: store.Metrics{Congested: 0, Stretch: 2, MaxStretch: 3, MaxUtil: 0.75, Fits: true},
		},
	}
	for _, r := range cells {
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// checkGolden compares got against testdata/<name> as a stable
// projection, rewriting the file when UPDATE_GOLDEN=1. Every field the
// golden document records must match the response exactly — values,
// array lengths, nesting — but fields the response has *grown* since the
// golden was recorded are ignored, so adding a counter or a histogram to
// /v1/stats does not churn every golden in testdata. Removing or
// changing a recorded field still fails.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	var wantV, gotV any
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("%s: golden is not JSON: %v", name, err)
	}
	if err := json.Unmarshal(got, &gotV); err != nil {
		t.Fatalf("%s: response is not JSON: %v\n%s", name, err, got)
	}
	if diff := projectDiff("$", wantV, gotV); diff != "" {
		t.Fatalf("%s drifted: %s\n--- got\n%s\n--- want\n%s", name, diff, got, want)
	}
}

// projectDiff reports the first difference between want and got,
// comparing only the structure want records: object keys absent from
// want are ignored in got, everything else must match exactly.
func projectDiff(path string, want, got any) string {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: want object, got %T", path, got)
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				return fmt.Sprintf("%s.%s: missing from response", path, k)
			}
			if d := projectDiff(path+"."+k, w[k], gv); d != "" {
				return d
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Sprintf("%s: want array, got %T", path, got)
		}
		if len(g) != len(w) {
			return fmt.Sprintf("%s: want %d elements, got %d", path, len(w), len(g))
		}
		for i := range w {
			if d := projectDiff(fmt.Sprintf("%s[%d]", path, i), w[i], g[i]); d != "" {
				return d
			}
		}
	default:
		if !reflect.DeepEqual(want, got) {
			return fmt.Sprintf("%s: want %v, got %v", path, want, got)
		}
	}
	return ""
}

func get(t *testing.T, c *Client, path string) []byte {
	t.Helper()
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestGoldenResponses pins the /v1/query and /v1/stats wire format: a
// fixed store and a fixed request sequence must produce byte-identical
// JSON bodies.
func TestGoldenResponses(t *testing.T) {
	st := goldenStore(t)
	_, c := newTestServer(t, st, Options{Workers: 1, MaxInflight: 2, CacheSize: 16})

	checkGolden(t, "query.golden.json", get(t, c, "/v1/query?scheme=sp"))

	// One cell lookup twice: first from the store, then from the LRU, so
	// the stats golden shows both hit counters moving.
	key := "g000000000000000a-m0000000000000001-c00000000000000f1-sp"
	get(t, c, "/v1/cell?key="+key)
	get(t, c, "/v1/cell?key="+key)

	checkGolden(t, "summary.golden.json", get(t, c, "/v1/summary?points=3"))
	checkGolden(t, "stats.golden.json", get(t, c, "/v1/stats"))
}

func TestSummarize(t *testing.T) {
	st := goldenStore(t)
	sum := Summarize(st.Results(), 3)
	if sum.Cells != 3 || len(sum.Classes) != 2 {
		t.Fatalf("summary = %+v, want 3 cells over 2 classes", sum)
	}
	star := sum.Classes["star"]
	if star == nil || star.Cells != 2 || star.Nets != 1 {
		t.Fatalf("star class = %+v, want 2 cells, 1 net", star)
	}
	if star.FitFraction != 0.5 {
		t.Fatalf("star fit fraction = %g, want 0.5", star.FitFraction)
	}
	cdf := star.Metrics["stretch"]
	// Nearest-rank quantiles round half up: the 2-sample median lands on
	// the larger value.
	want := []CDFPoint{{Q: 0, V: 1.5}, {Q: 0.5, V: 2}, {Q: 1, V: 2}}
	if len(cdf) != 3 || cdf[0] != want[0] || cdf[1] != want[1] || cdf[2] != want[2] {
		t.Fatalf("stretch CDF = %+v, want %+v", cdf, want)
	}
	if empty := Summarize(nil, 3); empty.Cells != 0 || len(empty.Classes) != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}
