package serve

import (
	"context"
	"net/http"
	"sync"

	"lowlat/internal/store"
)

// outcome is what one place flight resolves to: the stored result and
// where it came from ("cache", "store", "computed").
type outcome struct {
	source string
	result store.Result
}

// flight is one in-progress computation shared by every request that
// asked for the same key while it ran.
type flight struct {
	done chan struct{}
	val  outcome
	err  error
}

// flightGroup coalesces duplicate work: for each key, at most one fn runs
// at a time, and callers that arrive while it runs wait for its result
// instead of starting their own. This is the property the daemon's
// acceptance test pins — N concurrent requests for one missing cell, one
// engine invocation.
//
// Unlike a memoizing cache, a finished flight is forgotten immediately;
// permanence is the store's and the LRU's job.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight // guarded by mu
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn once per key across concurrent callers. The follower hook
// runs (outside the lock) for each caller that joined an existing flight
// rather than leading its own; followers stop waiting when their own ctx
// dies, but the flight itself runs on — the leader owns it.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (outcome, error), follower func()) (outcome, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if follower != nil {
			follower()
		}
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return outcome{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	// The flight must resolve even if fn panics (net/http recovers the
	// leader's goroutine, but nothing would recover the followers):
	// convert the panic into an error for them, release the key so the
	// next request retries, and let the panic keep propagating.
	completed := false
	defer func() {
		if !completed {
			f.err = errf(http.StatusInternalServerError, "request leader panicked; see server log")
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn()
	completed = true
	return f.val, f.err
}
