package serve

import (
	"sort"

	"lowlat/internal/store"
)

// CDFPoint is one point of an empirical CDF: the metric value v at
// cumulative fraction q.
type CDFPoint struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

// ClassSummary aggregates every stored cell of one topology class: the
// landscape answer to "how does this class of networks behave under the
// stored schemes", in the CDF-over-networks form the paper's Figures 3/4
// plot.
type ClassSummary struct {
	// Cells is how many stored results the class aggregates.
	Cells int `json:"cells"`
	// Nets is how many distinct networks contributed.
	Nets int `json:"nets"`
	// FitFraction is the share of cells whose placement fit (no
	// congested link).
	FitFraction float64 `json:"fit_fraction"`
	// Metrics holds one CDF per stored metric, keyed congested / stretch
	// / max_stretch / max_util.
	Metrics map[string][]CDFPoint `json:"metrics"`
}

// Summary is the aggregate landscape over a (possibly filtered) result
// slice, grouped by topology class.
type Summary struct {
	// Cells is the total cell count summarized.
	Cells int `json:"cells"`
	// Points is how many CDF points each metric carries.
	Points int `json:"points"`
	// Classes maps class name to its aggregate; cells with no class
	// label group under "unclassified".
	Classes map[string]*ClassSummary `json:"classes"`
}

// Summarize aggregates results into per-class metric CDFs with the given
// number of evenly spaced quantile points (minimum 2: min and max). The
// input order does not matter; equal stores summarize identically.
func Summarize(results []store.Result, points int) *Summary {
	if points < 2 {
		points = 2
	}
	sum := &Summary{Cells: len(results), Points: points, Classes: make(map[string]*ClassSummary)}
	type group struct {
		vals map[string][]float64
		nets map[string]bool
		fit  int
	}
	groups := make(map[string]*group)
	for _, r := range results {
		class := r.Meta.Class
		if class == "" {
			class = "unclassified"
		}
		g, ok := groups[class]
		if !ok {
			g = &group{vals: make(map[string][]float64), nets: make(map[string]bool)}
			groups[class] = g
		}
		g.vals["congested"] = append(g.vals["congested"], r.Metrics.Congested)
		g.vals["stretch"] = append(g.vals["stretch"], r.Metrics.Stretch)
		g.vals["max_stretch"] = append(g.vals["max_stretch"], r.Metrics.MaxStretch)
		g.vals["max_util"] = append(g.vals["max_util"], r.Metrics.MaxUtil)
		g.nets[r.Meta.Net] = true
		if r.Metrics.Fits {
			g.fit++
		}
	}
	for class, g := range groups {
		n := len(g.vals["congested"])
		cs := &ClassSummary{
			Cells:   n,
			Nets:    len(g.nets),
			Metrics: make(map[string][]CDFPoint),
		}
		if n > 0 {
			cs.FitFraction = float64(g.fit) / float64(n)
		}
		for metric, vals := range g.vals {
			sort.Float64s(vals)
			cs.Metrics[metric] = cdfPoints(vals, points)
		}
		sum.Classes[class] = cs
	}
	return sum
}

// cdfPoints samples the empirical CDF of sorted vals at `points` evenly
// spaced cumulative fractions from 0 to 1 (nearest-rank quantiles).
func cdfPoints(vals []float64, points int) []CDFPoint {
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		idx := int(q*float64(len(vals)-1) + 0.5)
		out = append(out, CDFPoint{Q: q, V: vals[idx]})
	}
	return out
}
