package serve

// This file is the streaming half of the health plane: /v1/watch holds
// the connection open and pushes a WatchEvent snapshot — health roll-up,
// rolling windows, new journal entries — every interval as a server-sent
// event. `lowlat watch` renders the stream as a live terminal view; curl
// renders it readably for free. The stream reads the server's own
// journal (which, on a daemon sharing one journal between its serving
// and cluster layers, carries replica transitions too); the exhaustive
// replica-folded view stays on /v1/events.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lowlat/internal/obs"
)

// minWatchInterval floors the per-connection snapshot period so a
// client asking for "1ns" cannot turn the daemon into a busy loop.
const minWatchInterval = 100 * time.Millisecond

// WatchEvent is one /v1/watch SSE payload (event type "snapshot"): the
// moment's health evaluation, the server's rolling endpoint windows, and
// the journal entries recorded since the previous snapshot.
type WatchEvent struct {
	// Time is when the snapshot was taken.
	Time time.Time `json:"time"`
	// Health is the same evaluation /v1/health serves.
	Health HealthReport `json:"health"`
	// Windows is the server's per-endpoint rolling-window view (http_*
	// stages; backend stages ride in /v1/stats, not the stream).
	Windows map[string][]obs.WindowSnapshot `json:"windows,omitempty"`
	// Events are the journal entries since the previous snapshot.
	Events []obs.Event `json:"events,omitempty"`
}

// handleWatch streams WatchEvent snapshots as server-sent events until
// the client disconnects. ?interval=2s overrides the snapshot period
// (floored at 100ms); ?since=<seq> replays journal entries after a
// cursor into the first snapshot instead of starting at "now".
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	interval := s.opts.WatchInterval
	q := r.URL.Query()
	if v := q.Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, errf(http.StatusBadRequest, "bad interval %q", v))
			return
		}
		interval = max(d, minWatchInterval)
	}
	cursor := s.journal.LastSeq()
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, errf(http.StatusBadRequest, "bad since %q", v))
			return
		}
		cursor = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(http.StatusNotImplemented, "streaming unsupported by connection"))
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		ev := WatchEvent{
			Time:    time.Now(),
			Health:  s.Health(),
			Windows: s.obs.Windows(),
			Events:  s.journal.Since(cursor, 0),
		}
		for _, e := range ev.Events {
			if e.Seq > cursor {
				cursor = e.Seq
			}
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data); err != nil {
			return // client gone
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}
