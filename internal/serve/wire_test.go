package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"lowlat/internal/store"
)

// TestDaemonWireMatchesStoreWire pins the one-marshal-path satellite
// from the daemon side: each result element in a /v1/query response,
// compacted, is byte-identical to store.MarshalResult of the same cell —
// the daemon serves the store's canonical wire form, not a parallel
// encoding that could drift.
func TestDaemonWireMatchesStoreWire(t *testing.T) {
	st := goldenStore(t)
	_, c := newTestServer(t, st, Options{Workers: 1})
	body := get(t, c, "/v1/query")

	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want := st.Results()
	if len(resp.Results) != len(want) {
		t.Fatalf("%d results on the wire, %d in the store", len(resp.Results), len(want))
	}
	for i, raw := range resp.Results {
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			t.Fatal(err)
		}
		canonical, err := store.MarshalResult(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(compact.Bytes(), canonical) {
			t.Fatalf("result %d drifted from the canonical wire form:\n--- daemon\n%s\n--- store\n%s",
				i, compact.Bytes(), canonical)
		}
	}
}
