package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"lowlat/internal/core"
	"lowlat/internal/engine"
	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/tm"
	"lowlat/internal/trace"
)

// AggregateSpec describes one aggregate's traffic process for a closed-loop
// run: a base mean rate that drifts minute to minute, with sub-second
// bursts of a given relative magnitude and temporal correlation.
type AggregateSpec struct {
	Src      graph.NodeID
	Dst      graph.NodeID
	Flows    int
	MeanBps  float64
	BurstStd float64 // relative to the current mean (e.g. 0.25)
	Corr     float64 // AR(1) coefficient of per-bin noise
}

// SpecsFromMatrix derives traffic processes from a traffic matrix:
// aggregate volumes become base means; burstiness is drawn deterministically
// per aggregate in [0.05, 0.40], mirroring the spread in the CAIDA traces.
func SpecsFromMatrix(m *tm.Matrix, seed int64) []AggregateSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]AggregateSpec, m.Len())
	for i, a := range m.Aggregates {
		specs[i] = AggregateSpec{
			Src:      a.Src,
			Dst:      a.Dst,
			Flows:    a.Flows,
			MeanBps:  a.Volume,
			BurstStd: 0.05 + 0.35*rng.Float64(),
			Corr:     0.9,
		}
	}
	return specs
}

// ClosedLoopConfig drives the full Figure 11 cycle over simulated minutes:
// measure (last minute's per-bin rates) -> optimize (LDR or a static
// scheme) -> install -> play the next minute's traffic over the installed
// placement in the fluid simulator.
type ClosedLoopConfig struct {
	// Minutes is the simulated duration (default 10).
	Minutes int
	// BinSec is the measurement and simulation bin (default 0.1).
	BinSec float64
	// Seed drives traffic generation.
	Seed int64
	// DriftPerMinute is the relative sigma of each aggregate's
	// minute-to-minute mean random walk (default 0.025, matching the
	// <10%/min the paper cites for backbone links).
	DriftPerMinute float64
	// Controller configures LDR. Ignored when Scheme is set.
	Controller core.Config
	// Scheme, when non-nil, replaces LDR: each minute the scheme places
	// a matrix whose demands are last minute's measured means. This is
	// how the B4/MinMax comparisons run.
	Scheme routing.Scheme
	// BufferSec bounds link buffers during simulation (0 = unbounded).
	BufferSec float64
}

func (c ClosedLoopConfig) withDefaults() ClosedLoopConfig {
	if c.Minutes <= 0 {
		c.Minutes = 10
	}
	if c.BinSec <= 0 {
		c.BinSec = 0.1
	}
	if c.DriftPerMinute <= 0 {
		c.DriftPerMinute = 0.025
	}
	return c
}

// MinuteStats records one simulated minute.
type MinuteStats struct {
	Minute int
	// MaxQueueSec is the worst transient queue drain time on any link.
	MaxQueueSec float64
	// CongestedFraction is the fraction of aggregates whose traffic
	// crossed a link that queued persistently (>50% of bins).
	CongestedFraction float64
	// LatencyStretch is the placement's propagation stretch.
	LatencyStretch float64
	// DropFraction is fluid lost to finite buffers.
	DropFraction float64
	// MuxRounds is LDR's appraisal rounds (0 for static schemes).
	MuxRounds int
	// Unresolved counts links LDR left failing the multiplexing test.
	Unresolved int
}

// ClosedLoopResult aggregates a run.
type ClosedLoopResult struct {
	Minutes []MinuteStats
	// WorstQueueSec is the maximum MaxQueueSec across minutes.
	WorstQueueSec float64
	// MeanStretch averages the per-minute placement stretch.
	MeanStretch float64
	// QueueViolations counts minutes whose worst queue exceeded bound.
	QueueViolations int
	// QueueBoundSec echoes the bound used for counting violations.
	QueueBoundSec float64
}

// ClosedLoopJob is one independent closed-loop drive: a topology, its
// traffic processes, and the cycle configuration.
type ClosedLoopJob struct {
	// Name labels the job in errors (typically the network name).
	Name   string
	Graph  *graph.Graph
	Specs  []AggregateSpec
	Config ClosedLoopConfig
}

// RunClosedLoopBatch drives independent closed-loop simulations through
// the shared engine pool (workers <= 0 selects one per CPU). Each job is
// self-contained — its own controller, caches and RNG state — so results
// are identical to running the jobs sequentially; they return in job
// order. The first failure cancels jobs that have not started.
func RunClosedLoopBatch(ctx context.Context, workers int, jobs []ClosedLoopJob) ([]*ClosedLoopResult, error) {
	return engine.Map(ctx, workers, jobs,
		func(_ context.Context, i int, j ClosedLoopJob) (*ClosedLoopResult, error) {
			res, err := RunClosedLoop(j.Graph, j.Specs, j.Config)
			if err != nil {
				name := j.Name
				if name == "" {
					name = fmt.Sprintf("job %d", i)
				}
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			return res, nil
		})
}

// RunClosedLoop simulates cfg.Minutes of control cycles on g for the given
// traffic processes.
func RunClosedLoop(g *graph.Graph, specs []AggregateSpec, cfg ClosedLoopConfig) (*ClosedLoopResult, error) {
	cfg = cfg.withDefaults()
	if len(specs) == 0 {
		return nil, errors.New("sim: no aggregate specs")
	}
	binsPerMinute := int(60 / cfg.BinSec)
	if binsPerMinute <= 0 {
		return nil, fmt.Errorf("sim: bin %vs too coarse for a minute", cfg.BinSec)
	}

	// Both the controller and tm.New order aggregates by (src, dst);
	// sorting the specs identically keeps spec index i aligned with
	// placement.Allocs[i] when simulating. Duplicates would silently
	// break that alignment, so they are rejected.
	specs = append([]AggregateSpec(nil), specs...)
	sort.Slice(specs, func(a, b int) bool {
		if specs[a].Src != specs[b].Src {
			return specs[a].Src < specs[b].Src
		}
		return specs[a].Dst < specs[b].Dst
	})
	for i := 1; i < len(specs); i++ {
		if specs[i].Src == specs[i-1].Src && specs[i].Dst == specs[i-1].Dst {
			return nil, fmt.Errorf("sim: duplicate aggregate %d -> %d", specs[i].Src, specs[i].Dst)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	means := make([]float64, len(specs))
	for i, s := range specs {
		if s.MeanBps <= 0 {
			return nil, fmt.Errorf("sim: aggregate %d has non-positive mean", i)
		}
		means[i] = s.MeanBps
	}

	genMinute := func(minute int) [][]float64 {
		series := make([][]float64, len(specs))
		for i, s := range specs {
			seed := cfg.Seed ^ int64(minute)<<20 ^ int64(i)<<2 ^ 0x5bd1e995
			series[i] = trace.AggregateSeries(seed, binsPerMinute, means[i], s.BurstStd, s.Corr)
		}
		return series
	}

	drift := func() {
		for i := range means {
			f := 1 + rng.NormFloat64()*cfg.DriftPerMinute
			if f < 0.5 {
				f = 0.5
			}
			means[i] *= f
		}
	}

	var ctl *core.Controller
	if cfg.Scheme == nil {
		ctl = core.NewController(g, cfg.Controller)
	}

	queueBound := cfg.Controller.Mux.MaxQueueSec
	if queueBound <= 0 {
		queueBound = 0.010
	}

	res := &ClosedLoopResult{QueueBoundSec: queueBound}
	measured := genMinute(0) // bootstrap: minute 0 doubles as first measurement

	for minute := 0; minute < cfg.Minutes; minute++ {
		var placement *routing.Placement
		stats := MinuteStats{Minute: minute}

		if ctl != nil {
			inputs := make([]core.AggregateInput, len(specs))
			for i, s := range specs {
				inputs[i] = core.AggregateInput{Src: s.Src, Dst: s.Dst, Flows: s.Flows, Series: measured[i]}
			}
			out, err := ctl.Optimize(inputs)
			if err != nil {
				return nil, fmt.Errorf("sim: minute %d: %w", minute, err)
			}
			placement = out.Placement
			stats.MuxRounds = out.MuxRounds
			stats.Unresolved = len(out.UnresolvedLinks)
		} else {
			aggs := make([]tm.Aggregate, len(specs))
			for i, s := range specs {
				mean := meanOf(measured[i])
				if mean < 1 {
					// tm.New drops zero-volume aggregates, which
					// would misalign Allocs with the spec order.
					mean = 1
				}
				aggs[i] = tm.Aggregate{Src: s.Src, Dst: s.Dst, Volume: mean, Flows: s.Flows}
			}
			var err error
			placement, err = cfg.Scheme.Place(g, tm.New(aggs))
			if err != nil {
				return nil, fmt.Errorf("sim: minute %d: %w", minute, err)
			}
		}

		// The installed placement carries the *next* minute's traffic.
		drift()
		live := genMinute(minute + 1)
		simRes, err := Run(placement, live, Config{BinSec: cfg.BinSec, BufferSec: cfg.BufferSec})
		if err != nil {
			return nil, fmt.Errorf("sim: minute %d: %w", minute, err)
		}

		stats.MaxQueueSec = simRes.MaxQueueSec
		stats.DropFraction = simRes.DropFraction()
		stats.LatencyStretch = placement.LatencyStretch()
		stats.CongestedFraction = congestedFraction(placement, simRes)
		res.Minutes = append(res.Minutes, stats)

		if stats.MaxQueueSec > res.WorstQueueSec {
			res.WorstQueueSec = stats.MaxQueueSec
		}
		if stats.MaxQueueSec > queueBound {
			res.QueueViolations++
		}
		res.MeanStretch += stats.LatencyStretch

		measured = live
	}
	res.MeanStretch /= float64(len(res.Minutes))
	return res, nil
}

// congestedFraction maps the simulator's persistent-queue links back to
// aggregate pairs, mirroring the paper's "fraction of pairs congested".
func congestedFraction(p *routing.Placement, r *Result) float64 {
	if p.TM.Len() == 0 {
		return 0
	}
	persistent := make([]bool, len(r.Links))
	for lid, ls := range r.Links {
		persistent[lid] = ls.QueuedBins > r.Bins/2
	}
	n := 0
	for _, allocs := range p.Allocs {
		hit := false
		for _, al := range allocs {
			for _, lid := range al.Path.Links {
				if persistent[lid] {
					hit = true
				}
			}
		}
		if hit {
			n++
		}
	}
	return float64(n) / float64(p.TM.Len())
}

func meanOf(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}
