package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"lowlat/internal/routing"
	"lowlat/internal/tmgen"
	"lowlat/internal/topo"
)

func TestClosedLoopLDRKeepsQueuesBoundedWhenConverged(t *testing.T) {
	// At a load LDR can actually appraise clean (min-cut at 50%), every
	// minute must converge and live-traffic queues must stay within a
	// small multiple of the 10 ms budget (live traffic is a fresh draw,
	// not the measured minute the appraisal certified).
	g := topo.Grid("grid-4x4", 4, 4, 300, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 5, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 5)

	out, err := RunClosedLoop(g, specs, ClosedLoopConfig{Minutes: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Minutes) != 5 {
		t.Fatalf("got %d minutes", len(out.Minutes))
	}
	for _, ms := range out.Minutes {
		if ms.LatencyStretch < 1-1e-9 {
			t.Fatalf("minute %d: stretch %v < 1", ms.Minute, ms.LatencyStretch)
		}
		if ms.Unresolved != 0 {
			t.Fatalf("minute %d: appraisal left %d links unresolved at 50%% load",
				ms.Minute, ms.Unresolved)
		}
	}
	if out.WorstQueueSec > 3*out.QueueBoundSec {
		t.Fatalf("LDR worst queue %v s far exceeds bound %v s", out.WorstQueueSec, out.QueueBoundSec)
	}
}

func TestClosedLoopLDRFlagsUnboundableLoad(t *testing.T) {
	// At the paper's 0.77 min-cut load with aggregates this bursty, no
	// placement can pass the multiplexing test: the controller must say
	// so (unresolved links) rather than silently accept queueing — the
	// paper's "reject any solution yielding transient queuing delays
	// that exceed a maximum allowed value".
	g := topo.Grid("grid-4x4", 4, 4, 300, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 5)

	out, err := RunClosedLoop(g, specs, ClosedLoopConfig{Minutes: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, ms := range out.Minutes {
		if ms.Unresolved > 0 {
			flagged++
		}
	}
	if flagged == 0 && out.WorstQueueSec > out.QueueBoundSec {
		t.Fatal("queues exceeded the bound without the controller flagging any link")
	}
}

func TestClosedLoopLDRBeatsZeroHeadroomOnQueues(t *testing.T) {
	g := topo.Grid("grid-4x4", 4, 4, 300, topo.Cap10G)
	// Load the network harder so headroom actually matters.
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 7, TargetMaxUtil: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 7)
	cfg := ClosedLoopConfig{Minutes: 5, Seed: 7}

	ldr, err := RunClosedLoop(g, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	edge := cfg
	edge.Scheme = routing.LatencyOpt{} // zero headroom, no appraisal
	raw, err := RunClosedLoop(g, specs, edge)
	if err != nil {
		t.Fatal(err)
	}

	if ldr.WorstQueueSec > raw.WorstQueueSec {
		t.Fatalf("LDR queues (%v s) must not exceed zero-headroom queues (%v s)",
			ldr.WorstQueueSec, raw.WorstQueueSec)
	}
	// Headroom costs latency: LDR's placements may stretch more.
	if ldr.MeanStretch < 1-1e-9 || raw.MeanStretch < 1-1e-9 {
		t.Fatalf("stretches must be >= 1: %v %v", ldr.MeanStretch, raw.MeanStretch)
	}
}

func TestClosedLoopStaticSchemes(t *testing.T) {
	g := topo.Grid("grid-3x3", 3, 3, 300, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 11)

	for _, scheme := range []routing.Scheme{routing.SP{}, routing.B4{}, routing.MinMax{}} {
		out, err := RunClosedLoop(g, specs, ClosedLoopConfig{Minutes: 3, Seed: 11, Scheme: scheme})
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if len(out.Minutes) != 3 {
			t.Fatalf("%s: got %d minutes", scheme.Name(), len(out.Minutes))
		}
		for _, ms := range out.Minutes {
			if ms.MuxRounds != 0 {
				t.Fatalf("%s: static schemes have no appraisal rounds", scheme.Name())
			}
		}
	}
}

func TestClosedLoopDeterminism(t *testing.T) {
	g := topo.Grid("grid-3x3", 3, 3, 300, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 3)
	cfg := ClosedLoopConfig{Minutes: 3, Seed: 3, Scheme: routing.SP{}}

	a, err := RunClosedLoop(g, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClosedLoop(g, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the identical run")
	}
}

func TestClosedLoopValidation(t *testing.T) {
	g := topo.Grid("grid-3x3", 3, 3, 300, topo.Cap10G)
	if _, err := RunClosedLoop(g, nil, ClosedLoopConfig{}); err == nil {
		t.Fatal("no specs must error")
	}
	bad := []AggregateSpec{{Src: 0, Dst: 1, MeanBps: 0}}
	if _, err := RunClosedLoop(g, bad, ClosedLoopConfig{}); err == nil {
		t.Fatal("non-positive mean must error")
	}
}

func TestSpecsFromMatrix(t *testing.T) {
	g := topo.Grid("grid-3x3", 3, 3, 300, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromMatrix(res.Matrix, 1)
	if len(specs) != res.Matrix.Len() {
		t.Fatalf("got %d specs for %d aggregates", len(specs), res.Matrix.Len())
	}
	for i, s := range specs {
		a := res.Matrix.Aggregates[i]
		if s.Src != a.Src || s.Dst != a.Dst || s.MeanBps != a.Volume {
			t.Fatalf("spec %d does not mirror aggregate: %+v vs %+v", i, s, a)
		}
		if s.BurstStd < 0.05 || s.BurstStd > 0.40 {
			t.Fatalf("spec %d burst std %v out of range", i, s.BurstStd)
		}
	}
	// Deterministic for a fixed seed.
	again := SpecsFromMatrix(res.Matrix, 1)
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("SpecsFromMatrix must be deterministic")
	}
}

func TestClosedLoopBatchMatchesSequential(t *testing.T) {
	// Independent per-network drives through the pool must produce
	// exactly what sequential RunClosedLoop calls produce, in job order.
	var jobs []ClosedLoopJob
	for _, name := range []string{"grid-3x3", "grid-4x4"} {
		w := 3
		if name == "grid-4x4" {
			w = 4
		}
		g := topo.Grid(name, w, w, 300, topo.Cap10G)
		res, err := tmgen.Generate(g, tmgen.Config{Seed: 5, TargetMaxUtil: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, ClosedLoopJob{
			Name:   name,
			Graph:  g,
			Specs:  SpecsFromMatrix(res.Matrix, 5),
			Config: ClosedLoopConfig{Minutes: 2, Seed: 5, Scheme: routing.MinMax{}},
		})
	}
	want := make([]*ClosedLoopResult, len(jobs))
	for i, j := range jobs {
		res, err := RunClosedLoop(j.Graph, j.Specs, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got, err := RunClosedLoopBatch(context.Background(), 4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("batched closed-loop results differ from sequential runs")
	}
}

func TestClosedLoopBatchReportsJobName(t *testing.T) {
	g := topo.Grid("grid-2x2", 2, 2, 300, topo.Cap10G)
	_, err := RunClosedLoopBatch(context.Background(), 2, []ClosedLoopJob{
		{Name: "empty-specs", Graph: g, Config: ClosedLoopConfig{Minutes: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "empty-specs") {
		t.Fatalf("err = %v, want job name in message", err)
	}
}
