package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lowlat/internal/routing"
	"lowlat/internal/tmgen"
	"lowlat/internal/topo"
)

// randomRun builds a random placement and traffic on a small grid and
// simulates it.
func randomRun(seed int64, scale float64) (*routing.Placement, [][]float64, *Result, error) {
	rng := rand.New(rand.NewSource(seed))
	g := topo.Grid("qgrid", 3, 3, 200, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	m := res.Matrix.Scale(scale)
	p, err := routing.LatencyOpt{}.Place(g, m)
	if err != nil {
		return nil, nil, nil, err
	}
	bins := 20 + rng.Intn(30)
	traffic := make([][]float64, m.Len())
	for i, a := range m.Aggregates {
		traffic[i] = make([]float64, bins)
		for b := range traffic[i] {
			traffic[i][b] = a.Volume * (0.5 + rng.Float64())
		}
	}
	out, err := Run(p, traffic, Config{BinSec: 0.1})
	return p, traffic, out, err
}

func TestQuickSimConservesOfferedVolume(t *testing.T) {
	f := func(seed int64) bool {
		p, traffic, out, err := randomRun(seed, 0.8)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		// OfferedBits must equal traffic x fraction x bin, summed over
		// every link each path crosses.
		want := 0.0
		for i, allocs := range p.Allocs {
			sumRate := 0.0
			for _, r := range traffic[i] {
				sumRate += r
			}
			for _, al := range allocs {
				want += sumRate * 0.1 * al.Fraction * float64(len(al.Path.Links))
			}
		}
		return math.Abs(out.OfferedBits-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSimQueueMonotoneInLoad(t *testing.T) {
	f := func(seed int64) bool {
		p, traffic, base, err := randomRun(seed, 0.9)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		doubled := make([][]float64, len(traffic))
		for i, s := range traffic {
			doubled[i] = make([]float64, len(s))
			for b, v := range s {
				doubled[i][b] = 2 * v
			}
		}
		more, err := Run(p, doubled, Config{BinSec: 0.1})
		if err != nil {
			t.Logf("run2: %v", err)
			return false
		}
		// Doubling every rate cannot shrink any queue.
		for lid := range base.Links {
			if more.Links[lid].MaxQueueSec < base.Links[lid].MaxQueueSec-1e-12 {
				return false
			}
		}
		return more.MaxQueueSec >= base.MaxQueueSec-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSimUnboundedBufferNeverDrops(t *testing.T) {
	f := func(seed int64) bool {
		_, _, out, err := randomRun(seed, 1.2)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return out.DroppedBits == 0 && out.DropFraction() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSimStatsFinite(t *testing.T) {
	f := func(seed int64) bool {
		_, _, out, err := randomRun(seed, 1.0)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		for _, ls := range out.Links {
			if math.IsNaN(ls.MaxQueueSec) || math.IsInf(ls.MaxQueueSec, 0) ||
				ls.MaxQueueSec < 0 || ls.MeanUtil < 0 || ls.PeakUtil < 0 {
				return false
			}
		}
		for _, q := range out.AggregateQueueSec {
			if q < 0 || math.IsNaN(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
