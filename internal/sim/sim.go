// Package sim is a slotted fluid simulator for traffic placements. It
// plays recorded (or synthetic) per-bin aggregate bitrates over the paths
// a routing scheme chose and tracks per-link queues, giving an end-to-end
// check of the paper's headroom story: placements that pass the §5
// multiplexing appraisal should keep transient queues under the bound
// (10 ms), while zero-headroom latency-optimal placements on busy links
// should not.
//
// The model is deliberately fluid, not per-packet: the paper's queueing
// argument is about 100 ms-scale aggregate rate variation, which a fluid
// carry-over queue captures exactly (it is the same computation as the
// controller's temporal-correlation test, generalized to every link and
// arbitrary bin widths, with optional propagation offsets and finite
// buffers).
//
// Each link is an independent FIFO fed by the offered per-path rates;
// upstream bottlenecks do not reshape what downstream links see. This
// matches the modeling the paper's own appraisal makes (Figure 14's test B
// sums offered aggregate series per link) and errs conservative: offered
// load is an upper bound on shaped load, so simulated queues bound real
// ones from above — the safe direction when validating a queue budget.
package sim

import (
	"errors"
	"fmt"
	"math"

	"lowlat/internal/graph"
	"lowlat/internal/routing"
)

// Config parameterizes a simulation run.
type Config struct {
	// BinSec is the slot width in seconds (default 0.1, the
	// controller's measurement bin).
	BinSec float64
	// BufferSec bounds each link's queue to BufferSec x capacity bits;
	// beyond it, arriving fluid is dropped. Zero means unbounded queues
	// (loss-free, delay grows instead).
	BufferSec float64
	// ModelPropagation shifts traffic arrival at downstream links by
	// the accumulated propagation delay (rounded to whole bins). Off by
	// default: at 100 ms bins most WAN paths fit within one bin.
	ModelPropagation bool
}

func (c Config) withDefaults() Config {
	if c.BinSec <= 0 {
		c.BinSec = 0.1
	}
	return c
}

// LinkStats summarizes one link's behavior over the run.
type LinkStats struct {
	// MaxQueueSec is the worst queue drain time observed (queue bits /
	// capacity), the quantity the paper bounds at 10 ms.
	MaxQueueSec float64
	// MeanUtil is offered load (excluding drops) over capacity,
	// averaged across bins.
	MeanUtil float64
	// PeakUtil is the highest single-bin arrival rate over capacity
	// (can exceed 1; the excess is what queues).
	PeakUtil float64
	// DroppedBits is fluid lost to buffer overflow.
	DroppedBits float64
	// QueuedBins counts bins that ended with a non-empty queue.
	QueuedBins int
}

// Result is the outcome of a simulation run.
type Result struct {
	BinSec float64
	Bins   int
	// Links holds per-link statistics, indexed by LinkID.
	Links []LinkStats
	// MaxQueueSec is the worst LinkStats.MaxQueueSec, and WorstLink the
	// link that produced it (-1 when no queue ever formed).
	MaxQueueSec float64
	WorstLink   graph.LinkID
	// AggregateQueueSec is, per aggregate, the worst sum of queue drain
	// times along any of its paths in any bin — an upper bound on the
	// queueing delay its traffic saw.
	AggregateQueueSec []float64
	// OfferedBits and DroppedBits total the run.
	OfferedBits float64
	DroppedBits float64
}

// DropFraction is the fraction of offered fluid lost to finite buffers.
func (r *Result) DropFraction() float64 {
	if r.OfferedBits == 0 {
		return 0
	}
	return r.DroppedBits / r.OfferedBits
}

// QueueFreeFraction is the fraction of links that never queued.
func (r *Result) QueueFreeFraction() float64 {
	if len(r.Links) == 0 {
		return 1
	}
	n := 0
	for _, ls := range r.Links {
		if ls.QueuedBins == 0 {
			n++
		}
	}
	return float64(n) / float64(len(r.Links))
}

// Run plays the traffic series over the placement. traffic[i] holds
// aggregate i's bitrate (bits/sec) per bin; all series must share one
// length, which sets the run duration.
func Run(p *routing.Placement, traffic [][]float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if p == nil || p.G == nil || p.TM == nil {
		return nil, errors.New("sim: nil placement")
	}
	if len(traffic) != p.TM.Len() {
		return nil, fmt.Errorf("sim: %d traffic series for %d aggregates", len(traffic), p.TM.Len())
	}
	bins := -1
	for i, series := range traffic {
		if bins == -1 {
			bins = len(series)
		}
		if len(series) != bins {
			return nil, fmt.Errorf("sim: series %d has %d bins, want %d", i, len(series), bins)
		}
	}
	if bins <= 0 {
		return nil, errors.New("sim: empty traffic series")
	}

	g := p.G
	nLinks := g.NumLinks()

	// Precompute each (aggregate, path, link) share and its arrival
	// offset in bins.
	type flowHop struct {
		agg    int
		link   graph.LinkID
		frac   float64
		offset int
	}
	var hops []flowHop
	type pathRef struct {
		agg   int
		links []graph.LinkID
	}
	var paths []pathRef
	for i, allocs := range p.Allocs {
		for _, al := range allocs {
			if al.Fraction <= 0 {
				continue
			}
			paths = append(paths, pathRef{agg: i, links: al.Path.Links})
			cum := 0.0
			for _, lid := range al.Path.Links {
				offset := 0
				if cfg.ModelPropagation {
					offset = int(cum / cfg.BinSec)
				}
				hops = append(hops, flowHop{agg: i, link: lid, frac: al.Fraction, offset: offset})
				cum += g.Link(lid).Delay
			}
		}
	}

	queue := make([]float64, nLinks)    // bits queued at each link
	arrivals := make([]float64, nLinks) // bits arriving this bin
	capBits := make([]float64, nLinks)  // serviceable bits per bin
	bufBits := make([]float64, nLinks)  // buffer bound (0 = unbounded)
	for i, l := range g.Links() {
		capBits[i] = l.Capacity * cfg.BinSec
		if cfg.BufferSec > 0 {
			bufBits[i] = l.Capacity * cfg.BufferSec
		}
	}

	res := &Result{
		BinSec:            cfg.BinSec,
		Bins:              bins,
		Links:             make([]LinkStats, nLinks),
		WorstLink:         -1,
		AggregateQueueSec: make([]float64, p.TM.Len()),
	}
	sumUtil := make([]float64, nLinks)
	queueSec := make([]float64, nLinks) // current drain time per link

	for bin := 0; bin < bins; bin++ {
		for i := range arrivals {
			arrivals[i] = 0
		}
		for _, h := range hops {
			at := bin - h.offset
			if at < 0 {
				continue // still in flight at run start
			}
			arrivals[h.link] += traffic[h.agg][at] * h.frac * cfg.BinSec
		}

		for lid := 0; lid < nLinks; lid++ {
			a := arrivals[lid]
			res.OfferedBits += a
			ls := &res.Links[lid]
			if util := a / capBits[lid]; util > ls.PeakUtil {
				ls.PeakUtil = util
			}
			sumUtil[lid] += a

			q := queue[lid] + a
			if bufBits[lid] > 0 && q > bufBits[lid]+capBits[lid] {
				dropped := q - (bufBits[lid] + capBits[lid])
				ls.DroppedBits += dropped
				res.DroppedBits += dropped
				q = bufBits[lid] + capBits[lid]
			}
			q -= capBits[lid]
			if q < 0 {
				q = 0
			}
			queue[lid] = q
			qs := q / (capBits[lid] / cfg.BinSec) // bits / (bits/sec) = sec
			queueSec[lid] = qs
			if qs > ls.MaxQueueSec {
				ls.MaxQueueSec = qs
			}
			if q > 0 {
				ls.QueuedBins++
			}
		}

		// Worst per-aggregate path queueing delay this bin.
		for _, pr := range paths {
			total := 0.0
			for _, lid := range pr.links {
				total += queueSec[lid]
			}
			if total > res.AggregateQueueSec[pr.agg] {
				res.AggregateQueueSec[pr.agg] = total
			}
		}
	}

	for lid := 0; lid < nLinks; lid++ {
		ls := &res.Links[lid]
		ls.MeanUtil = sumUtil[lid] / (capBits[lid] * float64(bins))
		if ls.MaxQueueSec > res.MaxQueueSec {
			res.MaxQueueSec = ls.MaxQueueSec
			res.WorstLink = graph.LinkID(lid)
		}
	}
	if math.IsNaN(res.MaxQueueSec) {
		return nil, errors.New("sim: NaN queue state (non-finite traffic input?)")
	}
	return res, nil
}
