package sim

import (
	"math"
	"testing"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/tm"
)

// line builds a -> b -> c with the given capacities (bits/sec) and 1 ms
// per-hop delay.
func line(capAB, capBC float64) (*graph.Graph, []graph.NodeID) {
	b := graph.NewBuilder("line")
	a := b.AddNode("a", geo.Point{})
	mid := b.AddNode("b", geo.Point{})
	c := b.AddNode("c", geo.Point{})
	b.AddBiLink(a, mid, capAB, 0.001)
	b.AddBiLink(mid, c, capBC, 0.001)
	return b.MustBuild(), []graph.NodeID{a, mid, c}
}

// spPlacement places every aggregate fully on its shortest path.
func spPlacement(t testing.TB, g *graph.Graph, m *tm.Matrix) *routing.Placement {
	t.Helper()
	p, err := routing.SP{}.Place(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func constSeries(rate float64, bins int) []float64 {
	s := make([]float64, bins)
	for i := range s {
		s[i] = rate
	}
	return s
}

func TestRunSteadyUnderloadNoQueue(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 5e9, Flows: 100}})
	p := spPlacement(t, g, m)

	res, err := Run(p, [][]float64{constSeries(5e9, 100)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueSec != 0 {
		t.Fatalf("steady 50%% load must not queue, got %v", res.MaxQueueSec)
	}
	if res.WorstLink != -1 {
		t.Fatalf("worst link = %v, want -1", res.WorstLink)
	}
	// Mean utilization on the two traversed links must be 0.5.
	seen := 0
	for _, ls := range res.Links {
		if ls.MeanUtil > 0 {
			seen++
			if math.Abs(ls.MeanUtil-0.5) > 1e-9 {
				t.Fatalf("mean util = %v, want 0.5", ls.MeanUtil)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("traffic crossed %d links, want 2", seen)
	}
}

func TestRunPersistentOverloadQueueGrows(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 12e9, Flows: 100}})
	p := spPlacement(t, g, m)

	bins := 50
	res, err := Run(p, [][]float64{constSeries(12e9, bins)}, Config{BinSec: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 Gb/s of excess accumulates each second on the first link:
	// after 5 s the queue drains in (12-10)*5/10 = 1 s.
	want := (12e9 - 10e9) * 0.1 * float64(bins) / 10e9
	if math.Abs(res.MaxQueueSec-want) > 1e-6 {
		t.Fatalf("max queue = %v s, want %v s", res.MaxQueueSec, want)
	}
	if res.Links[res.WorstLink].QueuedBins != bins {
		t.Fatal("overloaded link must queue in every bin")
	}
	// Offered-rate semantics: both path links see the full 12 Gb/s, so
	// both queue identically (the conservative upper bound the package
	// documents).
	queued := 0
	for _, ls := range res.Links {
		if ls.QueuedBins > 0 {
			queued++
			if math.Abs(ls.MaxQueueSec-want) > 1e-6 {
				t.Fatalf("queued link max = %v, want %v", ls.MaxQueueSec, want)
			}
		}
	}
	if queued != 2 {
		t.Fatalf("%d links queued, want 2 (offered-rate model)", queued)
	}
}

func TestRunPerLinkQueuesAreIndependent(t *testing.T) {
	// 9 Gb/s offered over a 10G then an 8G hop: only the 8G hop queues.
	// The offered-rate model applies each link's own capacity to the
	// same offered series.
	g, ids := line(10e9, 8e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 9e9, Flows: 100}})
	p := spPlacement(t, g, m)

	res, err := Run(p, [][]float64{constSeries(9e9, 100)}, Config{BinSec: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := g.FindLink(ids[0], ids[1])
	second, _ := g.FindLink(ids[1], ids[2])
	if res.Links[first.ID].MaxQueueSec != 0 {
		t.Fatalf("10G hop under 9G must not queue, got %v", res.Links[first.ID].MaxQueueSec)
	}
	if res.Links[second.ID].MaxQueueSec <= 0 {
		t.Fatal("8G hop under 9G must queue")
	}
}

func TestRunBurstQueuesThenDrains(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 5e9, Flows: 100}})
	p := spPlacement(t, g, m)

	// A single 15 Gb/s bin against 10G: 0.5 Gb of excess, draining in
	// 50 ms; afterwards the queue must empty.
	series := constSeries(5e9, 20)
	series[5] = 15e9
	res, err := Run(p, [][]float64{series}, Config{BinSec: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := (15e9 - 10e9) * 0.1 / 10e9 // 50 ms
	if math.Abs(res.MaxQueueSec-want) > 1e-9 {
		t.Fatalf("max queue = %v, want %v", res.MaxQueueSec, want)
	}
	if ls := res.Links[res.WorstLink]; ls.QueuedBins != 1 {
		t.Fatalf("queue must clear immediately at 50%% load, queued bins = %d", ls.QueuedBins)
	}
}

func TestRunFiniteBufferDrops(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 20e9, Flows: 100}})
	p := spPlacement(t, g, m)

	res, err := Run(p, [][]float64{constSeries(20e9, 100)}, Config{BinSec: 0.1, BufferSec: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBits == 0 {
		t.Fatal("sustained 2x overload with a 50 ms buffer must drop")
	}
	if res.MaxQueueSec > 0.05+0.1+1e-9 {
		t.Fatalf("queue bounded by buffer+bin, got %v", res.MaxQueueSec)
	}
	if df := res.DropFraction(); df <= 0 || df >= 1 {
		t.Fatalf("drop fraction = %v", df)
	}
}

func TestRunSplitPlacementBalances(t *testing.T) {
	// Two disjoint 10G routes; a placement splitting 12G evenly must
	// not queue anywhere.
	b := graph.NewBuilder("split")
	a := b.AddNode("a", geo.Point{})
	u := b.AddNode("u", geo.Point{})
	v := b.AddNode("v", geo.Point{})
	z := b.AddNode("z", geo.Point{})
	b.AddBiLink(a, u, 10e9, 0.001)
	b.AddBiLink(u, z, 10e9, 0.001)
	b.AddBiLink(a, v, 10e9, 0.002)
	b.AddBiLink(v, z, 10e9, 0.002)
	g := b.MustBuild()

	m := tm.New([]tm.Aggregate{{Src: a, Dst: z, Volume: 12e9, Flows: 100}})
	p, err := routing.LatencyOpt{}.Place(g, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, [][]float64{constSeries(12e9, 50)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueSec != 0 {
		t.Fatalf("balanced split must not queue, got %v on link %v", res.MaxQueueSec, res.WorstLink)
	}
}

func TestRunAggregateQueueDelayAccumulates(t *testing.T) {
	// Both links slightly over capacity: the aggregate's path queue
	// delay must be the sum of both links' delays.
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 11e9, Flows: 100}})
	p := spPlacement(t, g, m)

	res, err := Run(p, [][]float64{constSeries(11e9, 10)}, Config{BinSec: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Both equally-overloaded hops queue identically, so the path's
	// accumulated queueing delay is twice the per-link maximum.
	if math.Abs(res.AggregateQueueSec[0]-2*res.MaxQueueSec) > 1e-9 {
		t.Fatalf("aggregate queue %v != 2x link max %v", res.AggregateQueueSec[0], res.MaxQueueSec)
	}
	if res.AggregateQueueSec[0] <= 0 {
		t.Fatal("aggregate must see queueing")
	}
}

func TestRunPropagationOffsetShiftsArrival(t *testing.T) {
	// With a 100 ms first hop and propagation modeling on, the second
	// link sees nothing in bin 0.
	b := graph.NewBuilder("prop")
	a := b.AddNode("a", geo.Point{})
	mid := b.AddNode("m", geo.Point{})
	z := b.AddNode("z", geo.Point{})
	b.AddBiLink(a, mid, 10e9, 0.15) // 1.5 bins of propagation
	b.AddBiLink(mid, z, 10e9, 0.001)
	g := b.MustBuild()
	m := tm.New([]tm.Aggregate{{Src: a, Dst: z, Volume: 8e9, Flows: 10}})
	p := spPlacement(t, g, m)

	res, err := Run(p, [][]float64{constSeries(8e9, 3)}, Config{BinSec: 0.1, ModelPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	second, _ := g.FindLink(mid, z)
	// 3 bins offered upstream; downstream sees only bins shifted by 1
	// => 2 bins of traffic => mean util = (2/3) * 0.8.
	wantMean := 0.8 * 2 / 3
	if math.Abs(res.Links[second.ID].MeanUtil-wantMean) > 1e-9 {
		t.Fatalf("downstream mean util = %v, want %v", res.Links[second.ID].MeanUtil, wantMean)
	}
}

func TestRunInputValidation(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 1e9, Flows: 1}})
	p := spPlacement(t, g, m)

	if _, err := Run(nil, nil, Config{}); err == nil {
		t.Fatal("nil placement must error")
	}
	if _, err := Run(p, [][]float64{}, Config{}); err == nil {
		t.Fatal("missing series must error")
	}
	if _, err := Run(p, [][]float64{{}}, Config{}); err == nil {
		t.Fatal("empty series must error")
	}
	if _, err := Run(p, [][]float64{{1, 2}, {1}}, Config{}); err == nil {
		t.Fatal("ragged series must error")
	}
}

func TestQueueFreeFraction(t *testing.T) {
	g, ids := line(10e9, 10e9)
	m := tm.New([]tm.Aggregate{{Src: ids[0], Dst: ids[2], Volume: 12e9, Flows: 1}})
	p := spPlacement(t, g, m)
	res, err := Run(p, [][]float64{constSeries(12e9, 10)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 links total; the 2 on the path queue under offered-rate load.
	if got := res.QueueFreeFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("queue-free fraction = %v, want 0.5", got)
	}
}
