// Package stats provides small statistical helpers shared across the
// reproduction: empirical CDFs, percentiles, summaries and Zipf sampling.
// All randomness in the repository flows through explicitly seeded
// *rand.Rand instances so every experiment is deterministic.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty CDF ready for use.
type CDF struct {
	sorted []float64
	dirty  bool
}

// NewCDF returns a CDF over a copy of the given samples.
func NewCDF(samples []float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add inserts one sample.
func (c *CDF) Add(v float64) {
	c.sorted = append(c.sorted, v)
	c.dirty = true
}

// AddAll inserts all samples.
func (c *CDF) AddAll(vs []float64) {
	c.sorted = append(c.sorted, vs...)
	c.dirty = true
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

func (c *CDF) ensureSorted() {
	if c.dirty {
		sort.Float64s(c.sorted)
		c.dirty = false
	}
}

// At returns P(X <= v), the fraction of samples at or below v.
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. Quantile(0.5) is the median.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Mean returns the arithmetic mean of the samples, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Max returns the largest sample, or NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.sorted[len(c.sorted)-1]
}

// Min returns the smallest sample, or NaN when empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.sorted[0]
}

// Points returns up to n evenly spaced (value, cumulative fraction) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		out = append(out, Point{
			X: c.sorted[idx],
			Y: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return out
}

// Point is one (x, y) sample of a plotted curve.
type Point struct {
	X float64
	Y float64
}

// Summary holds the order statistics most figures in the paper report.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P90    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over the samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	c := NewCDF(samples)
	return Summary{
		N:      c.Len(),
		Mean:   c.Mean(),
		Median: c.Quantile(0.5),
		P90:    c.Quantile(0.9),
		Min:    c.Min(),
		Max:    c.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g p90=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.P90, s.Min, s.Max)
}

// Median is a convenience wrapper for the 0.5 quantile of samples.
func Median(samples []float64) float64 {
	return NewCDF(samples).Quantile(0.5)
}

// Percentile returns the p-th percentile (0-100) of samples.
func Percentile(samples []float64, p float64) float64 {
	return NewCDF(samples).Quantile(p / 100)
}

// ZipfWeights returns n weights following a Zipf distribution with exponent
// s: weight(i) = 1/(i+1)^s, normalized to sum to one. The paper's gravity
// model draws PoP traffic masses from such a distribution.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ShuffledZipfWeights returns ZipfWeights(n, s) randomly permuted, so that
// the heavy masses land on random PoPs rather than always the first ones.
func ShuffledZipfWeights(n int, s float64, rng *rand.Rand) []float64 {
	w := ZipfWeights(n, s)
	rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// Rng returns a deterministic RNG for the given seed. Centralizing the
// construction makes it trivial to audit that nothing uses global rand.
func Rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Correlation returns the Pearson correlation coefficient of the two
// equally-sized sample slices, or NaN if undefined.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// MeanStd returns the mean and population standard deviation of samples.
func MeanStd(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return math.NaN(), math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	mean = sum / float64(len(samples))
	varsum := 0.0
	for _, v := range samples {
		d := v - mean
		varsum += d * d
	}
	return mean, math.Sqrt(varsum / float64(len(samples)))
}
