package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(3); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := c.Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Fatalf("min/max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Fatal("empty CDF should yield NaN")
	}
	if c.At(1) != 0 {
		t.Fatal("empty CDF At should be 0")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestCDFIncrementalAdd(t *testing.T) {
	var c CDF
	c.Add(5)
	c.Add(1)
	if got := c.Quantile(0.5); got != 1 {
		t.Fatalf("median of {1,5} = %v, want 1 (nearest rank)", got)
	}
	c.AddAll([]float64{2, 3, 4})
	if got := c.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Fatalf("endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points must be nondecreasing in Y")
		}
	}
	if got := c.Points(100); len(got) != 10 {
		t.Fatalf("Points capped at sample count, got %d", len(got))
	}
}

func TestQuantileIsOrderStatistic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		med := c.Quantile(0.5)
		sort.Float64s(vals)
		// Nearest-rank median must be an element of the sample.
		idx := sort.SearchFloat64s(vals, med)
		return idx < len(vals) && vals[idx] == med
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Median != 5 || s.P90 != 9 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summarize = %+v", z)
	}
}

func TestMedianPercentile(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Fatalf("Median = %v", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 90); got != 9 {
		t.Fatalf("P90 = %v", got)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1.0)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatal("Zipf weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v, want 1", sum)
	}
	if math.Abs(w[0]/w[1]-2) > 1e-9 {
		t.Fatalf("s=1 ratio w0/w1 = %v, want 2", w[0]/w[1])
	}
	if ZipfWeights(0, 1) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestShuffledZipfWeights(t *testing.T) {
	rng := Rng(1)
	w := ShuffledZipfWeights(50, 1.2, rng)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	// Deterministic for a fixed seed.
	w2 := ShuffledZipfWeights(50, 1.2, Rng(1))
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("shuffle must be deterministic per seed")
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Correlation(xs, []float64{1})) {
		t.Fatal("mismatched lengths should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("zero-variance input should be NaN")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Fatalf("mean/std = %v/%v, want 5/2", mean, std)
	}
	m, s := MeanStd(nil)
	if !math.IsNaN(m) || !math.IsNaN(s) {
		t.Fatal("empty input should be NaN")
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := Rng(42), Rng(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}
