package store

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/tm"
)

// Digest is a 64-bit content hash rendered as fixed-width hex in JSON, so
// shard files stay greppable and keys survive tools that mangle large
// integers.
type Digest uint64

// String renders the digest as 16 hex digits.
func (d Digest) String() string { return fmt.Sprintf("%016x", uint64(d)) }

// MarshalJSON implements json.Marshaler.
func (d Digest) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Digest) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("store: digest %s is not a hex string", b)
	}
	v, err := strconv.ParseUint(string(b[1:len(b)-1]), 16, 64)
	if err != nil {
		return fmt.Errorf("store: bad digest %s: %w", b, err)
	}
	*d = Digest(v)
	return nil
}

// CellKey addresses one cell of the scenario cross-product: one traffic
// matrix placed on one topology by one configured scheme. Keys are
// content-derived — graph structure, matrix contents, scheme name and
// scheme configuration — so the same cell produced by different drivers
// (a sweep, a figure run, a facade call) lands on the same store entry.
type CellKey struct {
	// Graph is graph.Fingerprint: name, node names/coordinates, link
	// endpoints/capacities/delays.
	Graph Digest `json:"graph"`
	// Matrix digests the tm serialization (node names, volumes, flow
	// counts, weights).
	Matrix Digest `json:"matrix"`
	// Scheme is the scheme's Name().
	Scheme string `json:"scheme"`
	// Config digests the scheme knobs Name() does not encode (headroom
	// value, path caps, ...) via routing.ConfigString.
	Config Digest `json:"config"`
}

// String renders the key in its canonical, filename-safe form.
func (k CellKey) String() string {
	return "g" + k.Graph.String() + "-m" + k.Matrix.String() + "-c" + k.Config.String() + "-" + k.Scheme
}

// ParseCellKey parses the canonical form String renders
// ("g<16hex>-m<16hex>-c<16hex>-<scheme>"), for callers — the daemon's
// /v1/cell endpoint, scripts over export output — that address cells by
// the key strings earlier runs printed.
func ParseCellKey(s string) (CellKey, error) {
	fail := func() (CellKey, error) {
		return CellKey{}, fmt.Errorf("store: bad cell key %q (want g<hex16>-m<hex16>-c<hex16>-<scheme>)", s)
	}
	var k CellKey
	for _, part := range []struct {
		prefix byte
		dst    *Digest
	}{{'g', &k.Graph}, {'m', &k.Matrix}, {'c', &k.Config}} {
		if len(s) < 18 || s[0] != part.prefix || s[17] != '-' {
			return fail()
		}
		v, err := strconv.ParseUint(s[1:17], 16, 64)
		if err != nil {
			return fail()
		}
		*part.dst = Digest(v)
		s = s[18:]
	}
	if s == "" {
		return fail()
	}
	k.Scheme = s
	return k, nil
}

// hash spreads keys across shards.
func (k CellKey) hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.String()))
	return h.Sum64()
}

// DigestKeys folds a key set into one order-independent digest: equal
// sets digest equal whatever order (or replica) produced them, so two
// stores can be compared for anti-entropy with one value instead of a
// key-by-key exchange. Each key's FNV hash is avalanched through the
// splitmix64 finalizer before the commutative fold — raw FNV sums of
// near-identical keys would cancel structure the comparison relies on.
func DigestKeys(keys []CellKey) Digest {
	var d uint64
	for _, k := range keys {
		x := k.hash()
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		d += x
	}
	return Digest(d)
}

// KeyFor computes the store key of one scenario cell.
func KeyFor(g *graph.Graph, m *tm.Matrix, scheme routing.Scheme) CellKey {
	return CellKey{
		Graph:  Digest(g.Fingerprint()),
		Matrix: MatrixDigest(g, m),
		Scheme: scheme.Name(),
		Config: ConfigDigest(scheme),
	}
}

// MatrixDigest hashes a traffic matrix's canonical tm serialization
// (which resolves node IDs to names through g, so the digest is stable
// across separately built copies of the same topology).
func MatrixDigest(g *graph.Graph, m *tm.Matrix) Digest {
	h := fnv.New64a()
	h.Write(tm.Marshal(g, m))
	return Digest(h.Sum64())
}

// ConfigDigest hashes the scheme configuration that Name() leaves out.
func ConfigDigest(scheme routing.Scheme) Digest {
	h := fnv.New64a()
	h.Write([]byte(routing.ConfigString(scheme)))
	return Digest(h.Sum64())
}
