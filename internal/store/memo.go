package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lowlat/internal/graph"
)

// MemoKey addresses one calibration memo entry: the matrix digest that a
// seeded gravity-model generation produces for one topology at one
// (load, locality) operating point. Matrix generation is deterministic in
// these four inputs (the seeded-generator determinism tests pin it), so
// the memo lets sweep resume and daemon warm-up derive content-addressed
// cell keys without re-running the calibration LP solves.
type MemoKey struct {
	// Graph is graph.Fingerprint of the topology.
	Graph Digest `json:"graph"`
	// Seed is the traffic-matrix seed.
	Seed int64 `json:"seed"`
	// Load is the target min-cut utilization the matrix was calibrated to.
	Load float64 `json:"load"`
	// Locality is the traffic locality parameter ℓ.
	Locality float64 `json:"locality"`
}

// MemoKeyFor computes the memo key of one (graph, seed, load, locality)
// calibration point.
func MemoKeyFor(g *graph.Graph, seed int64, load, locality float64) MemoKey {
	return MemoKey{
		Graph:    Digest(g.Fingerprint()),
		Seed:     seed,
		Load:     load,
		Locality: locality,
	}
}

// memoRecord is one persisted memo line.
type memoRecord struct {
	Key    MemoKey `json:"key"`
	Matrix Digest  `json:"matrix"`
}

// memoName is the memo file, separate from the shard files so the shard
// glob (and tools iterating result lines) never see memo records.
const memoName = "memo.jsonl"

// Memo looks up the memoized matrix digest for one calibration point.
func (s *Store) Memo(k MemoKey) (Digest, bool) {
	s.imu.RLock()
	defer s.imu.RUnlock()
	d, ok := s.memo[k]
	return d, ok
}

// MemoLen reports how many calibration points are memoized.
func (s *Store) MemoLen() int {
	s.imu.RLock()
	defer s.imu.RUnlock()
	return len(s.memo)
}

// PutMemo appends a calibration memo entry and indexes it. Like Put, an
// entry identical to the indexed one is a no-op, the line is written with
// a single write syscall under the memo lock, and the newest write wins
// on the next Open.
func (s *Store) PutMemo(k MemoKey, matrix Digest) error {
	if s.readonly {
		return fmt.Errorf("store: %s: put memo: %w", s.dir, ErrReadOnly)
	}
	s.imu.RLock()
	prev, ok := s.memo[k]
	s.imu.RUnlock()
	if ok && prev == matrix {
		return nil
	}
	line, err := json.Marshal(memoRecord{Key: k, Matrix: matrix})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')

	s.mmu.Lock()
	f, err := s.memoHandle()
	if err == nil {
		_, err = f.Write(line)
	}
	s.mmu.Unlock()
	if err != nil {
		return fmt.Errorf("store: memo %s: %w", filepath.Join(s.dir, memoName), err)
	}

	s.imu.Lock()
	s.memo[k] = matrix
	s.imu.Unlock()
	return nil
}

// memoHandle lazily opens the memo append handle, healing a torn tail the
// same way shardFile does. Callers hold mmu.
func (s *Store) memoHandle() (*os.File, error) {
	if s.memoFile != nil {
		return s.memoFile, nil
	}
	f, err := openAppend(filepath.Join(s.dir, memoName))
	if err != nil {
		return nil, err
	}
	s.memoFile = f
	return f, nil
}

// loadMemo scans the memo file (if present) and rebuilds the memo index.
// Unparseable lines — a tail torn by a killed writer — are counted into
// the same Skipped total the shard loader uses.
func (s *Store) loadMemo() error {
	path := filepath.Join(s.dir, memoName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: memo %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r memoRecord
		if err := json.Unmarshal(line, &r); err != nil || r.Key == (MemoKey{}) {
			s.skipped++
			continue
		}
		s.memo[r.Key] = r.Matrix //nolint:locked // Open-time: the store has not been published to any other goroutine yet
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: memo %s: %w", path, err)
	}
	return nil
}

// compactMemoLocked rewrites the memo file as exactly one line per indexed
// entry, sorted, via temp+rename. Callers hold mmu and imu.
func (s *Store) compactMemoLocked() error {
	if s.memoFile != nil {
		s.memoFile.Close()
		s.memoFile = nil
	}
	keys := make([]MemoKey, 0, len(s.memo))
	for k := range s.memo {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Graph != kb.Graph {
			return ka.Graph < kb.Graph
		}
		if ka.Seed != kb.Seed {
			return ka.Seed < kb.Seed
		}
		if ka.Load != kb.Load {
			return ka.Load < kb.Load
		}
		return ka.Locality < kb.Locality
	})
	var buf []byte
	for _, k := range keys {
		line, err := json.Marshal(memoRecord{Key: k, Matrix: s.memo[k]})
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	path := filepath.Join(s.dir, memoName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: memo %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: memo %s: %w", path, err)
	}
	return nil
}
