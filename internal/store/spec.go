package store

import (
	"fmt"
	"hash/fnv"
)

// CellSpec is the request-side address of one scenario cell: the
// coordinates a caller knows *before* any graph is built or matrix
// generated — a resolvable net term, a matrix seed, a scheme name and its
// knobs, and the (load, locality) operating point. It is the complement
// of CellKey, the content-side address: deterministic generation maps one
// normalized spec to exactly one key, which is what lets every placement
// backend (local engine, remote daemon, hash-sharded cluster) agree on
// where a cell lives without talking to each other.
type CellSpec struct {
	// Net is a single-network sweep grid term: a zoo or named network
	// ("gts-like", "ring-12"), "randomgeo:<n>:<seed>", or
	// "multiregion:<RxP>:<seed>".
	Net string `json:"net"`
	// Seed is the traffic-matrix seed.
	Seed int64 `json:"seed"`
	// Scheme is a routing.ByName scheme name.
	Scheme string `json:"scheme"`
	// Headroom is the reserved-capacity fraction for schemes with a dial.
	Headroom float64 `json:"headroom,omitempty"`
	// Load is the target min-cut utilization (0 = the paper's 1/1.3).
	Load float64 `json:"load,omitempty"`
	// Locality is the traffic locality parameter ℓ. Unlike the HTTP wire
	// type, a CellSpec is always fully resolved: 0 means pure gravity, and
	// callers that want the default write 1 explicitly (Normalized does).
	Locality float64 `json:"locality"`
}

// DefaultLoad is the operating point a zero Load normalizes to — the
// paper's "traffic can grow by 30%" calibration.
const DefaultLoad = 1 / 1.3

// Normalized returns the spec with defaults applied: a zero Load becomes
// DefaultLoad. Identity-sensitive callers (ring placement, request
// coalescing) must normalize first so "load 0" and "load 1/1.3" collide.
func (s CellSpec) Normalized() CellSpec {
	if s.Load == 0 {
		s.Load = DefaultLoad
	}
	return s
}

// String renders the spec in its canonical form, one field per "|"-
// separated term. Two specs that would generate the same cell render
// identically (after Normalized), so the string doubles as a coalescing
// key and as the consistent-hash ring key for Place routing.
func (s CellSpec) String() string {
	return fmt.Sprintf("%s|%d|%s|%g|%g|%g", s.Net, s.Seed, s.Scheme, s.Headroom, s.Load, s.Locality)
}

// Hash is the 64-bit FNV-1a of the canonical string — the value
// consistent-hash rings place Place requests by.
func (s CellSpec) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.String()))
	return h.Sum64()
}
