// Package store is the persistent scenario-result store: an append-only,
// sharded JSONL database of placement outcomes keyed by content-derived
// cell keys (graph fingerprint, traffic-matrix digest, scheme name and
// configuration). It is the substrate the resumable sweeps in
// internal/sweep checkpoint into — a sweep killed mid-run reopens the
// store and recomputes only the cells that never landed.
//
// The design favors crash-tolerance over cleverness, the same trade large
// design-space studies (cISP's landscape sweeps, the Besta et al. path
// diversity study) make: results append as single JSONL lines under a
// per-shard lock, the index is rebuilt by scanning every shard at Open,
// and a line torn by a crash mid-append is skipped (and counted) instead
// of poisoning the file. Compact rewrites the shards with exactly the
// indexed records, dropping duplicates and torn tails.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lowlat/internal/routing"
)

// ErrReadOnly is returned (wrapped) by mutating methods of a store opened
// with OpenReadOnly.
var ErrReadOnly = errors.New("store is read-only")

// DefaultShards is the shard-file count Open uses. Sharding bounds
// per-file lock contention when the engine's workers checkpoint
// concurrently; reads always scan every shard-*.jsonl present, so a store
// written with one shard count reopens fine under another.
const DefaultShards = 8

// Metrics is the stored outcome of one placement — the scalar summary
// every experiment driver derives from a routing.Placement.
type Metrics struct {
	Congested  float64 `json:"congested"`
	Stretch    float64 `json:"stretch"`
	MaxStretch float64 `json:"max_stretch"`
	MaxUtil    float64 `json:"max_util"`
	Fits       bool    `json:"fits"`
}

// MetricsOf summarizes a placement into its stored form.
func MetricsOf(p *routing.Placement) Metrics {
	return Metrics{
		Congested:  p.CongestedPairFraction(),
		Stretch:    p.LatencyStretch(),
		MaxStretch: p.MaxStretch(),
		MaxUtil:    p.MaxUtilization(),
		Fits:       p.Fits(),
	}
}

// Meta labels a cell for humans and for query/export slicing. It carries
// no identity — CellKey does that — so two runs labeling the same cell
// differently still collide on the same entry (last write wins).
type Meta struct {
	Net      string  `json:"net"`
	Class    string  `json:"class,omitempty"`
	Seed     int64   `json:"seed"`
	TM       int     `json:"tm"`
	Scheme   string  `json:"scheme"`
	Headroom float64 `json:"headroom"`
	Load     float64 `json:"load"`
	Locality float64 `json:"locality"`
}

// Result is one stored cell: key, labels, outcome.
type Result struct {
	Key     CellKey `json:"key"`
	Meta    Meta    `json:"meta"`
	Metrics Metrics `json:"metrics"`
}

// Store is an on-disk result store with an in-memory index. All methods
// are safe for concurrent use within one process; concurrent writers from
// separate processes are not supported (last Open wins on Compact).
type Store struct {
	dir      string
	shards   int
	readonly bool

	fmu   []sync.Mutex // one per write shard, ordered before imu
	files []*os.File   // lazily opened append handles

	mmu      sync.Mutex // memo-file lock, ordered before imu
	memoFile *os.File   // lazily opened memo append handle

	imu     sync.RWMutex
	index   map[CellKey]Result // guarded by imu
	memo    map[MemoKey]Digest // guarded by imu
	skipped int                // unparseable lines tolerated at Open
}

// Open creates dir if needed, scans every shard for existing results and
// returns a store writing across DefaultShards shard files.
func Open(dir string) (*Store, error) { return OpenSharded(dir, DefaultShards) }

// OpenSharded is Open with an explicit write-shard count (tests use 1 to
// make torn-tail layouts deterministic).
func OpenSharded(dir string, shards int) (*Store, error) {
	if shards < 1 {
		shards = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		shards: shards,
		fmu:    make([]sync.Mutex, shards),
		files:  make([]*os.File, shards),
		index:  make(map[CellKey]Result),
		memo:   make(map[MemoKey]Digest),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenReadOnly opens an existing store for reading only: the directory is
// not created, no append handles are opened, and no byte of the store is
// ever written (in particular, a torn tail is skipped but not healed), so
// any number of read-only opens can safely run beside one writing
// process — each sees the consistent prefix of every shard that existed
// at its Open. Put, PutMemo and Compact return errors wrapping
// ErrReadOnly.
func OpenReadOnly(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("store: open %s: not a directory", dir)
	}
	s := &Store{
		dir:      dir,
		shards:   DefaultShards,
		readonly: true,
		index:    make(map[CellKey]Result),
		memo:     make(map[MemoKey]Digest),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readonly }

// shardName returns the shard file name for write shard i.
func shardName(i int) string { return fmt.Sprintf("shard-%03d.jsonl", i) }

// load scans every shard-*.jsonl in the directory (not just the
// configured write shards) and rebuilds the index. Lines that fail to
// parse — torn tails from a killed writer, or stray corruption — are
// counted and skipped; later records for a key replace earlier ones, so
// within one file append order wins.
func (s *Store) load() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "shard-*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := s.loadShard(p); err != nil {
			return err
		}
	}
	return s.loadMemo()
}

// loadShard reads one shard file into the index. Every failure is wrapped
// with the shard path: a daemon refusing to start over one unreadable
// shard must name the file, not just the syscall.
func (s *Store) loadShard(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: shard %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		r, err := UnmarshalResult(line)
		if err != nil {
			s.skipped++
			continue
		}
		s.index[r.Key] = r //nolint:locked // Open-time: the store has not been published to any other goroutine yet
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: shard %s: %w", path, err)
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len reports how many distinct cells are indexed.
func (s *Store) Len() int {
	s.imu.RLock()
	defer s.imu.RUnlock()
	return len(s.index)
}

// Skipped reports how many unparseable lines Open tolerated. A non-zero
// count after a crash is expected (one torn tail line); callers surface
// it so silent corruption never looks like a clean open.
func (s *Store) Skipped() int {
	s.imu.RLock()
	defer s.imu.RUnlock()
	return s.skipped
}

// Get looks a cell up by key.
func (s *Store) Get(k CellKey) (Result, bool) {
	s.imu.RLock()
	defer s.imu.RUnlock()
	r, ok := s.index[k]
	return r, ok
}

// Lookup is Get under the placement-backend method name, so a bare
// *Store satisfies the read side of the backend interfaces without an
// adapter.
func (s *Store) Lookup(k CellKey) (Result, bool) { return s.Get(k) }

// Put appends a result to its shard and indexes it. Re-putting a result
// identical to the indexed one is a no-op (no duplicate line); a result
// with the same key but different contents appends and replaces, so the
// newest write wins on the next Open too. The line is written with a
// single write syscall under the shard lock, which keeps concurrent
// checkpoints from interleaving; a process killed mid-write leaves at
// most one torn tail line, which the next Open skips.
func (s *Store) Put(r Result) error {
	if s.readonly {
		return fmt.Errorf("store: %s: put: %w", s.dir, ErrReadOnly)
	}
	s.imu.RLock()
	prev, ok := s.index[r.Key]
	s.imu.RUnlock()
	if ok && prev == r {
		return nil
	}
	line, err := MarshalResult(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')

	shard := int(r.Key.hash() % uint64(s.shards))
	s.fmu[shard].Lock()
	f, err := s.shardFile(shard)
	if err == nil {
		_, err = f.Write(line)
	}
	s.fmu[shard].Unlock()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	s.imu.Lock()
	s.index[r.Key] = r
	s.imu.Unlock()
	return nil
}

// shardFile lazily opens the append handle for a shard. If the file's
// last line was torn by a crash (no trailing newline), a newline is
// appended first so the next record starts on its own line instead of
// concatenating onto the fragment. Callers hold the shard lock.
func (s *Store) shardFile(shard int) (*os.File, error) {
	if s.files[shard] != nil {
		return s.files[shard], nil
	}
	f, err := openAppend(filepath.Join(s.dir, shardName(shard)))
	if err != nil {
		return nil, err
	}
	s.files[shard] = f
	return f, nil
}

// openAppend opens a JSONL file for appending, first appending a newline
// if the existing last line was torn by a crash (no trailing newline), so
// the next record starts on its own line instead of concatenating onto
// the fragment.
func openAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if n := st.Size(); n > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], n-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return f, nil
}

// Results returns every indexed cell sorted by (net, seed, tm, scheme,
// headroom, key) — a total order, so exports are byte-identical however
// the cells were computed or recovered.
func (s *Store) Results() []Result {
	s.imu.RLock()
	out := make([]Result, 0, len(s.index))
	for _, r := range s.index {
		out = append(out, r)
	}
	s.imu.RUnlock()
	SortResults(out)
	return out
}

// Keys returns every indexed cell key sorted by canonical string — the
// per-replica key inventory anti-entropy sweeps exchange. Sorted output
// keeps digest endpoints and heal logs deterministic.
func (s *Store) Keys() []CellKey {
	s.imu.RLock()
	out := make([]CellKey, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	s.imu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].String() < out[b].String() })
	return out
}

// Compact rewrites the store as exactly one line per indexed cell,
// dropping superseded duplicates and torn tails. Shards are written to
// temp files and renamed into place, so a crash mid-compact leaves either
// the old or the new file, never a half of each; stale shard files
// outside the configured write-shard set are removed.
func (s *Store) Compact() error {
	if s.readonly {
		return fmt.Errorf("store: %s: compact: %w", s.dir, ErrReadOnly)
	}
	for i := range s.fmu {
		s.fmu[i].Lock()
	}
	defer func() {
		for i := range s.fmu {
			s.fmu[i].Unlock()
		}
	}()
	s.mmu.Lock()
	defer s.mmu.Unlock()
	s.imu.Lock()
	defer s.imu.Unlock()

	// Close append handles: the files are about to be replaced.
	for i, f := range s.files {
		if f != nil {
			f.Close()
			s.files[i] = nil
		}
	}

	lines := make([][]byte, s.shards)
	keys := make([]CellKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].String() < keys[b].String() })
	for _, k := range keys {
		line, err := MarshalResult(s.index[k])
		if err != nil {
			return err
		}
		shard := int(k.hash() % uint64(s.shards))
		lines[shard] = append(lines[shard], line...)
		lines[shard] = append(lines[shard], '\n')
	}

	existing, err := filepath.Glob(filepath.Join(s.dir, "shard-*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fresh := make(map[string]bool, s.shards)
	for i := 0; i < s.shards; i++ {
		path := filepath.Join(s.dir, shardName(i))
		fresh[path] = true
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, lines[i], 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	for _, p := range existing {
		if !fresh[p] {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	if err := s.compactMemoLocked(); err != nil {
		return err
	}
	s.skipped = 0
	return nil
}

// Close releases the append handles. The store must not be used after.
func (s *Store) Close() error {
	for i := range s.fmu {
		s.fmu[i].Lock()
	}
	defer func() {
		for i := range s.fmu {
			s.fmu[i].Unlock()
		}
	}()
	s.mmu.Lock()
	defer s.mmu.Unlock()
	var first error
	for i, f := range s.files {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			s.files[i] = nil
		}
	}
	if s.memoFile != nil {
		if err := s.memoFile.Close(); err != nil && first == nil {
			first = err
		}
		s.memoFile = nil
	}
	return first
}
