package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lowlat/internal/engine"
	"lowlat/internal/routing"
	"lowlat/internal/tmgen"
	"lowlat/internal/topo"
)

// testCell builds a real (graph, matrix, scheme) cell so keys exercise the
// actual fingerprint and serialization paths.
func testCell(t *testing.T, seed int64, scheme routing.Scheme) Result {
	t.Helper()
	g := topo.Ring("ring-8", 8, 1400, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: seed, TargetMaxUtil: 0.6})
	if err != nil {
		t.Fatalf("tmgen: %v", err)
	}
	p, err := scheme.Place(g, res.Matrix)
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	return Result{
		Key: KeyFor(g, res.Matrix, scheme),
		Meta: Meta{
			Net: "ring-8", Class: "ring", Seed: seed,
			Scheme: scheme.Name(), Headroom: routing.Headroom(scheme),
			Load: 0.6, Locality: 1,
		},
		Metrics: MetricsOf(p),
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := testCell(t, 1, routing.SP{})
	r2 := testCell(t, 2, routing.MinMax{})
	for _, r := range []Result{r1, r2} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Get(r1.Key); !ok || got != r1 {
		t.Fatalf("Get(r1) = %+v, %v; want stored result", got, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen rebuilds the index from the shards.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || s2.Skipped() != 0 {
		t.Fatalf("reopen: Len=%d Skipped=%d, want 2, 0", s2.Len(), s2.Skipped())
	}
	if got, ok := s2.Get(r2.Key); !ok || got != r2 {
		t.Fatalf("reopened Get(r2) = %+v, %v", got, ok)
	}
}

func TestKeysSeparateCells(t *testing.T) {
	g := topo.Ring("ring-8", 8, 1400, topo.Cap10G)
	res, err := tmgen.Generate(g, tmgen.Config{Seed: 1, TargetMaxUtil: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	base := KeyFor(g, m, routing.LatencyOpt{})

	if k := KeyFor(g, m, routing.LatencyOpt{}); k != base {
		t.Fatalf("same cell produced different keys: %v vs %v", k, base)
	}
	// Headroom is invisible to LatencyOpt's Name at 0 vs >0 boundary but
	// must still separate keys via the config digest.
	if k := KeyFor(g, m, routing.LatencyOpt{Headroom: 0.11}); k == base {
		t.Fatal("headroom change did not change the key")
	}
	if k := KeyFor(g, m, routing.SP{}); k == base {
		t.Fatal("scheme change did not change the key")
	}
	res2, err := tmgen.Generate(g, tmgen.Config{Seed: 2, TargetMaxUtil: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if k := KeyFor(g, res2.Matrix, routing.LatencyOpt{}); k == base {
		t.Fatal("matrix change did not change the key")
	}
	g2 := topo.Ring("ring-10", 10, 1400, topo.Cap10G)
	res3, err := tmgen.Generate(g2, tmgen.Config{Seed: 1, TargetMaxUtil: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if k := KeyFor(g2, res3.Matrix, routing.LatencyOpt{}); k.Graph == base.Graph {
		t.Fatal("graph change did not change the graph digest")
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	d := Digest(0xdeadbeef01020304)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Fatalf("marshal = %s", b)
	}
	var back Digest
	if err := json.Unmarshal(b, &back); err != nil || back != d {
		t.Fatalf("unmarshal = %v, %v", back, err)
	}
	if err := json.Unmarshal([]byte(`123`), &back); err == nil {
		t.Fatal("numeric digest should be rejected")
	}
}

// TestTruncatedTailTolerated pins the crash-recovery contract: a store
// whose last line was torn by a kill keeps every complete record, reports
// exactly one skipped line, and accepts new appends.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := testCell(t, 1, routing.SP{})
	r2 := testCell(t, 2, routing.MinMax{})
	if err := s.Put(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(r2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the final line mid-record, as a kill -9 mid-append would.
	shard := filepath.Join(dir, shardName(0))
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || s2.Skipped() != 1 {
		t.Fatalf("after tear: Len=%d Skipped=%d, want 1, 1", s2.Len(), s2.Skipped())
	}
	if _, ok := s2.Get(r1.Key); !ok {
		t.Fatal("intact first record lost")
	}
	if _, ok := s2.Get(r2.Key); ok {
		t.Fatal("torn record should be gone")
	}
	// The store keeps accepting appends after recovery.
	if err := s2.Put(r2); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("after re-put: Len=%d, want 2", s3.Len())
	}
	// The torn fragment still sits mid-file until compaction.
	if s3.Skipped() != 1 {
		t.Fatalf("Skipped=%d, want 1 until Compact", s3.Skipped())
	}
}

func TestPutIdempotentAndLastWins(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := testCell(t, 1, routing.SP{})
	for i := 0; i < 3; i++ {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := countLines(t, filepath.Join(dir, shardName(0))); n != 1 {
		t.Fatalf("identical re-puts appended: %d lines, want 1", n)
	}

	changed := r
	changed.Metrics.Stretch = 9.99
	if err := s.Put(changed); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(r.Key); got.Metrics.Stretch != 9.99 {
		t.Fatalf("index kept old record: %+v", got)
	}
	s2, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Get(r.Key); got.Metrics.Stretch != 9.99 {
		t.Fatalf("reopen kept old record: %+v", got)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := testCell(t, 1, routing.SP{})
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	changed := r
	changed.Metrics.MaxUtil = 0.123
	if err := s.Put(changed); err != nil {
		t.Fatal(err)
	}
	other := testCell(t, 3, routing.MinMax{})
	if err := s.Put(other); err != nil {
		t.Fatal(err)
	}
	// A stray shard from an older, wider layout must be folded in.
	stray, err := json.Marshal(testCell(t, 4, routing.SP{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-777.jsonl"), append(stray, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenSharded(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("pre-compact Len=%d, want 3", s2.Len())
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-777.jsonl")); !os.IsNotExist(err) {
		t.Fatal("stale shard survived compaction")
	}
	total := 0
	for i := 0; i < 2; i++ {
		total += countLines(t, filepath.Join(dir, shardName(i)))
	}
	if total != 3 {
		t.Fatalf("compacted store has %d lines, want 3", total)
	}
	// Compaction kept the newest record and the store still works.
	if got, _ := s2.Get(r.Key); got.Metrics.MaxUtil != 0.123 {
		t.Fatalf("compaction resurrected an old record: %+v", got)
	}
	s3, err := OpenSharded(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 || s3.Skipped() != 0 {
		t.Fatalf("post-compact reopen: Len=%d Skipped=%d, want 3, 0", s3.Len(), s3.Skipped())
	}
}

// TestConcurrentPuts checkpoints from many goroutines at once, the way the
// sweep orchestrator's workers do; run with -race this doubles as the
// locking test.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := testCell(t, 1, routing.SP{})
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	_, err = engine.Map(context.Background(), 8, items,
		func(_ context.Context, _ int, i int) (struct{}, error) {
			r := base
			r.Key.Matrix = Digest(uint64(i) + 1)
			r.Meta.TM = i
			return struct{}{}, s.Put(r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 64 {
		t.Fatalf("Len=%d, want 64", s.Len())
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 64 || s2.Skipped() != 0 {
		t.Fatalf("reopen: Len=%d Skipped=%d, want 64, 0", s2.Len(), s2.Skipped())
	}
}

func TestResultsDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var want []string
	for _, seed := range []int64{3, 1, 2} {
		for _, scheme := range []routing.Scheme{routing.MinMax{}, routing.SP{}} {
			r := testCell(t, seed, scheme)
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			want = append(want, fmt.Sprintf("%d/%s", seed, scheme.Name()))
		}
	}
	res := s.Results()
	if len(res) != len(want) {
		t.Fatalf("Results len=%d, want %d", len(res), len(want))
	}
	var got []string
	for _, r := range res {
		got = append(got, fmt.Sprintf("%d/%s", r.Meta.Seed, r.Meta.Scheme))
	}
	wantOrder := "1/minmax 1/sp 2/minmax 2/sp 3/minmax 3/sp"
	if strings.Join(got, " ") != wantOrder {
		t.Fatalf("Results order = %v, want %s", got, wantOrder)
	}
}

// TestMemoRoundTrip pins the calibration memo contract: entries persist
// across reopens, identical re-puts don't append, a torn memo tail is
// skipped without losing intact entries, and Compact dedupes the file.
func TestMemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Ring("ring-8", 8, 1400, topo.Cap10G)
	k1 := MemoKeyFor(g, 1, 0.6, 1)
	k2 := MemoKeyFor(g, 2, 0.6, 1)
	if k1 == k2 {
		t.Fatal("seed change did not change the memo key")
	}
	if _, ok := s.Memo(k1); ok {
		t.Fatal("empty store reported a memo hit")
	}
	for i := 0; i < 3; i++ {
		if err := s.PutMemo(k1, Digest(0xaaaa)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutMemo(k2, Digest(0xbbbb)); err != nil {
		t.Fatal(err)
	}
	// Supersede k1: newest write wins in memory and on reopen.
	if err := s.PutMemo(k1, Digest(0xcccc)); err != nil {
		t.Fatal(err)
	}
	if n := countLines(t, filepath.Join(dir, memoName)); n != 3 {
		t.Fatalf("memo file has %d lines, want 3 (idempotent re-puts)", n)
	}
	s.Close()

	s2, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s2.Memo(k1); !ok || d != Digest(0xcccc) {
		t.Fatalf("reopened memo k1 = %v, %v; want cccc", d, ok)
	}
	if s2.MemoLen() != 2 {
		t.Fatalf("MemoLen = %d, want 2", s2.MemoLen())
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := countLines(t, filepath.Join(dir, memoName)); n != 2 {
		t.Fatalf("compacted memo has %d lines, want 2", n)
	}
	s2.Close()

	// Tear the memo tail as a kill -9 mid-append would: the intact entry
	// survives, the torn one is counted skipped, and appends still work.
	path := filepath.Join(dir, memoName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.MemoLen() != 1 || s3.Skipped() != 1 {
		t.Fatalf("after tear: MemoLen=%d Skipped=%d, want 1, 1", s3.MemoLen(), s3.Skipped())
	}
	if err := s3.PutMemo(k2, Digest(0xbbbb)); err != nil {
		t.Fatal(err)
	}
	s4, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if s4.MemoLen() != 2 {
		t.Fatalf("post-heal MemoLen=%d, want 2", s4.MemoLen())
	}
}

// TestOpenReadOnly pins the reader-side contract: an existing store opens
// without writing a byte (even with a torn tail), every mutation reports
// ErrReadOnly, and a missing directory is an error instead of a silently
// created empty store.
func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := testCell(t, 1, routing.SP{})
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testCell(t, 2, routing.MinMax{})); err != nil {
		t.Fatal(err)
	}
	g := topo.Ring("ring-8", 8, 1400, topo.Cap10G)
	if err := s.PutMemo(MemoKeyFor(g, 1, 0.6, 1), Digest(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail: a read-only open must tolerate it WITHOUT healing.
	shard := filepath.Join(dir, shardName(0))
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-9]
	if err := os.WriteFile(shard, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	if ro.Len() != 1 || ro.Skipped() != 1 || ro.MemoLen() != 1 {
		t.Fatalf("read-only open: Len=%d Skipped=%d MemoLen=%d, want 1, 1, 1",
			ro.Len(), ro.Skipped(), ro.MemoLen())
	}
	if _, ok := ro.Get(r.Key); !ok {
		t.Fatal("intact record missing from read-only open")
	}
	if err := ro.Put(r); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.PutMemo(MemoKeyFor(g, 9, 0.6, 1), Digest(9)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("PutMemo on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact on read-only store: %v, want ErrReadOnly", err)
	}
	// No byte of the store changed: the torn tail was not healed.
	after, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn) {
		t.Fatalf("read-only open modified the shard (%d -> %d bytes)", len(torn), len(after))
	}

	if _, err := OpenReadOnly(filepath.Join(dir, "no-such-store")); err == nil {
		t.Fatal("OpenReadOnly on a missing directory succeeded")
	}
}

// TestOpenNamesUnreadableShard pins the diagnosability fix: a shard that
// cannot be read fails Open with the shard path in the error, so a daemon
// refusing to start names the bad file.
func TestOpenNamesUnreadableShard(t *testing.T) {
	dir := t.TempDir()
	// A directory named like a shard defeats the line scanner for any
	// user, root included (a chmod-000 file would be readable to root).
	bad := filepath.Join(dir, "shard-000.jsonl")
	if err := os.Mkdir(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, open := range []func() (*Store, error){
		func() (*Store, error) { return Open(dir) },
		func() (*Store, error) { return OpenReadOnly(dir) },
	} {
		_, err := open()
		if err == nil {
			t.Fatal("Open over an unreadable shard succeeded")
		}
		if !strings.Contains(err.Error(), bad) {
			t.Fatalf("error %q does not name the shard path %q", err, bad)
		}
	}
}

func TestParseCellKey(t *testing.T) {
	r := testCell(t, 1, routing.LatencyOpt{Headroom: 0.11})
	s := r.Key.String()
	back, err := ParseCellKey(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != r.Key {
		t.Fatalf("ParseCellKey(%q) = %+v, want %+v", s, back, r.Key)
	}
	for _, bad := range []string{
		"", "latopt", "g1234-m1234-c1234-sp",
		"m0000000000000000-g0000000000000000-c0000000000000000-sp",
		"g0000000000000000-m0000000000000000-c0000000000000000-",
		"gzzzzzzzzzzzzzzzz-m0000000000000000-c0000000000000000-sp",
	} {
		if _, err := ParseCellKey(bad); err == nil {
			t.Errorf("ParseCellKey(%q) accepted", bad)
		}
	}
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}
