package store

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the single JSON wire path for cell results. The shard
// files on disk, the daemon's /v1 responses, the typed client's decoding
// and the CSV/JSON exporters all pass through Result's one set of struct
// tags via these two functions — there is deliberately no second marshal
// site, so a backend serving results over HTTP can never drift from the
// bytes a store persists. The encoding tests pin shard-line bytes and
// daemon wire bytes to each other.

// MarshalResult renders one cell in the canonical compact wire form: the
// exact bytes a shard file persists (minus the trailing newline) and the
// exact element encoding the daemon's JSON arrays carry (modulo
// indentation, which never reorders or reformats fields).
func MarshalResult(r Result) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: marshal result: %w", err)
	}
	return b, nil
}

// UnmarshalResult parses one canonical wire form back into a Result. A
// record without a key is rejected: every legitimate producer writes one,
// so a keyless record is corruption, not data.
func UnmarshalResult(b []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return Result{}, fmt.Errorf("store: unmarshal result: %w", err)
	}
	if r.Key == (CellKey{}) {
		return Result{}, fmt.Errorf("store: unmarshal result: record has no cell key")
	}
	return r, nil
}

// SortResults orders results by (net, seed, tm, scheme, headroom, key) in
// place — a total order, so exports and cluster-merged query answers are
// byte-identical however (and wherever) the cells were computed.
func SortResults(out []Result) {
	sort.Slice(out, func(a, b int) bool {
		ra, rb := out[a], out[b]
		if ra.Meta.Net != rb.Meta.Net {
			return ra.Meta.Net < rb.Meta.Net
		}
		if ra.Meta.Seed != rb.Meta.Seed {
			return ra.Meta.Seed < rb.Meta.Seed
		}
		if ra.Meta.TM != rb.Meta.TM {
			return ra.Meta.TM < rb.Meta.TM
		}
		if ra.Meta.Scheme != rb.Meta.Scheme {
			return ra.Meta.Scheme < rb.Meta.Scheme
		}
		if ra.Meta.Headroom != rb.Meta.Headroom {
			return ra.Meta.Headroom < rb.Meta.Headroom
		}
		return ra.Key.String() < rb.Key.String()
	})
}
