package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func wireResult() Result {
	return Result{
		Key: CellKey{Graph: 0x0a, Matrix: 0x01, Scheme: "sp", Config: 0xf1},
		Meta: Meta{Net: "star-6", Class: "star", Seed: 1, Scheme: "sp",
			Headroom: 0.1, Load: 0.75, Locality: 1},
		Metrics: Metrics{Congested: 0.25, Stretch: 1.5, MaxStretch: 2, MaxUtil: 0.9, Fits: true},
	}
}

// TestResultWireRoundTrip pins the canonical encoding as its own
// inverse, and rejects keyless records (torn-tail shards, corrupt wire
// payloads).
func TestResultWireRoundTrip(t *testing.T) {
	r := wireResult()
	b, err := MarshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", back, r)
	}
	if _, err := UnmarshalResult([]byte(`{"meta":{"net":"x"}}`)); err == nil {
		t.Fatal("keyless record accepted")
	}
	if _, err := UnmarshalResult([]byte(`{broken`)); err == nil {
		t.Fatal("malformed record accepted")
	}
}

// TestShardLineIsCanonicalWire pins the single-marshal-path property:
// the bytes Put appends to a shard file are exactly MarshalResult's
// bytes — the store's persistence format and the backends' wire format
// cannot drift because they are the same function.
func TestShardLineIsCanonicalWire(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := wireResult()
	if err := st.Put(r); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "shard-000.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSuffix(raw, []byte("\n")), want) {
		t.Fatalf("shard line drifted from canonical wire form:\n--- shard\n%s\n--- wire\n%s", raw, want)
	}
}
