package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lowlat/internal/store"
)

// Filter selects a slice of the store. Zero fields match everything.
type Filter struct {
	// Net keeps cells whose network name contains this substring.
	Net string
	// Class keeps cells of one topology class (exact match).
	Class string
	// Scheme keeps cells of one scheme name (exact match).
	Scheme string
	// Seed, when non-nil, keeps cells of one matrix seed.
	Seed *int64
	// Headroom, when non-nil, keeps cells at one headroom point.
	Headroom *float64
}

// Match reports whether a stored result passes the filter.
func (f Filter) Match(r store.Result) bool {
	if f.Net != "" && !strings.Contains(r.Meta.Net, f.Net) {
		return false
	}
	if f.Class != "" && r.Meta.Class != f.Class {
		return false
	}
	if f.Scheme != "" && r.Meta.Scheme != f.Scheme {
		return false
	}
	if f.Seed != nil && r.Meta.Seed != *f.Seed {
		return false
	}
	if f.Headroom != nil && r.Meta.Headroom != *f.Headroom {
		return false
	}
	return true
}

// Query returns the matching cells in the store's deterministic order.
func Query(st *store.Store, f Filter) []store.Result {
	var out []store.Result
	for _, r := range st.Results() {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// csvHeader is the export column set, one column per Meta and Metrics
// field plus the cell key.
var csvHeader = []string{
	"net", "class", "seed", "tm", "scheme", "headroom", "load", "locality",
	"congested", "stretch", "max_stretch", "max_util", "fits", "key",
}

// WriteCSV renders results as CSV. The header row is always written,
// even for zero results — the empty-store export is a valid CSV file
// with columns and no rows, mirroring WriteJSON's "[]", so downstream
// scripts never special-case emptiness. Floats use the shortest exact
// representation, so identical stores export identical bytes.
func WriteCSV(w io.Writer, results []store.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Meta.Net,
			r.Meta.Class,
			strconv.FormatInt(r.Meta.Seed, 10),
			strconv.Itoa(r.Meta.TM),
			r.Meta.Scheme,
			fg(r.Meta.Headroom),
			fg(r.Meta.Load),
			fg(r.Meta.Locality),
			fg(r.Metrics.Congested),
			fg(r.Metrics.Stretch),
			fg(r.Metrics.MaxStretch),
			fg(r.Metrics.MaxUtil),
			strconv.FormatBool(r.Metrics.Fits),
			r.Key.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders results as a JSON array, one object per cell, in
// store order. Zero results render as "[]", never "null" — the JSON
// counterpart of WriteCSV's always-present header. Each element is the
// canonical store.Result wire form (the same bytes a shard line or a
// daemon response carries, indented).
func WriteJSON(w io.Writer, results []store.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []store.Result{}
	}
	return enc.Encode(results)
}

// ReadJSON parses a WriteJSON export (or any JSON array of canonical
// cell results) back into a result slice — the round-trip inverse used
// by tests and by tools that post-process exports.
func ReadJSON(r io.Reader) ([]store.Result, error) {
	var out []store.Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("sweep: read json export: %w", err)
	}
	return out, nil
}

// ExportResults writes a result slice in the named format ("csv" or
// "json"), however the slice was obtained — a local store query, a
// remote daemon, a cluster fan-out.
func ExportResults(w io.Writer, results []store.Result, format string) error {
	switch format {
	case "csv":
		return WriteCSV(w, results)
	case "json":
		return WriteJSON(w, results)
	}
	return fmt.Errorf("sweep: unknown export format %q (want csv or json)", format)
}

// Export writes the filtered slice of the store in the named format
// ("csv" or "json").
func Export(w io.Writer, st *store.Store, f Filter, format string) error {
	return ExportResults(w, Query(st, f), format)
}

func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
