package sweep

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"lowlat/internal/store"
)

func exportResults() []store.Result {
	return []store.Result{
		{
			Key: store.CellKey{Graph: 0x0a, Matrix: 0x01, Scheme: "sp", Config: 0xf1},
			Meta: store.Meta{Net: "star-6", Class: "star", Seed: 1, Scheme: "sp",
				Load: 0.75, Locality: 1},
			Metrics: store.Metrics{Congested: 0.25, Stretch: 1.5, MaxStretch: 2, MaxUtil: 0.9},
		},
		{
			Key: store.CellKey{Graph: 0x0b, Matrix: 0x02, Scheme: "ldr", Config: 0xf2},
			Meta: store.Meta{Net: "ring-8", Class: "ring", Seed: 2, Scheme: "ldr",
				Headroom: 0.1, Load: 0.75, Locality: 1},
			Metrics: store.Metrics{Stretch: 1.25, MaxStretch: 1.5, MaxUtil: 0.5, Fits: true},
		},
	}
}

// TestExportJSONRoundTrip pins the JSON exporter against its inverse:
// WriteJSON then ReadJSON reproduces the slice exactly, including the
// content keys (digests survive the hex wire form).
func TestExportJSONRoundTrip(t *testing.T) {
	want := exportResults()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d changed in round trip:\n%+v\n%+v", i, got[i], want[i])
		}
	}
}

// TestExportEmptyConsistency pins the empty-export contract across both
// formats: CSV always writes its header row (zero data rows), JSON
// always writes "[]" — never null, never a bare empty file — so scripts
// downstream of `lowlat export` parse an empty store the same way in
// either format, local or remote.
func TestExportEmptyConsistency(t *testing.T) {
	for _, results := range [][]store.Result{nil, {}} {
		var csvBuf, jsonBuf bytes.Buffer
		if err := ExportResults(&csvBuf, results, "csv"); err != nil {
			t.Fatal(err)
		}
		if err := ExportResults(&jsonBuf, results, "json"); err != nil {
			t.Fatal(err)
		}

		rows, err := csv.NewReader(bytes.NewReader(csvBuf.Bytes())).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("empty CSV export has %d rows, want exactly the header", len(rows))
		}
		for i, col := range csvHeader {
			if rows[0][i] != col {
				t.Fatalf("header column %d = %q, want %q", i, rows[0][i], col)
			}
		}

		if got := strings.TrimSpace(jsonBuf.String()); got != "[]" {
			t.Fatalf("empty JSON export = %q, want []", got)
		}
		back, err := ReadJSON(bytes.NewReader(jsonBuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 0 {
			t.Fatalf("empty JSON round trip returned %d results", len(back))
		}
	}

	if err := ExportResults(&bytes.Buffer{}, nil, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestExportCSVRoundTripColumns pins that a non-empty CSV export carries
// one row per cell under the same always-present header, with the cell
// key in the last column parseable back to the original.
func TestExportCSVRoundTripColumns(t *testing.T) {
	results := exportResults()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(results)+1 {
		t.Fatalf("%d rows for %d results", len(rows), len(results))
	}
	for i, r := range results {
		row := rows[i+1]
		if row[0] != r.Meta.Net || row[4] != r.Meta.Scheme {
			t.Fatalf("row %d = %v for %+v", i, row, r.Meta)
		}
		key, err := store.ParseCellKey(row[len(row)-1])
		if err != nil {
			t.Fatal(err)
		}
		if key != r.Key {
			t.Fatalf("row %d key %v, want %v", i, key, r.Key)
		}
	}
}
