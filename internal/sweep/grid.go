package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/topo"
)

// Grid declares a sweep's cross-product: topologies x matrix seeds x
// schemes x headroom points, at one (load, locality) operating point.
// Expansion is deterministic, so the same grid always plans the same
// cells in the same order.
type Grid struct {
	// Nets names the topology set. Each entry is one of:
	//   - a zoo or named network ("gts-like", "ring-12", "google-like")
	//   - "zoo" for the whole synthetic zoo
	//   - "class:<c>" for every zoo network of one structural class
	//     ("class:grid", "class:intercontinental", ...)
	//   - "randomgeo:<n>:<seed>" for a generated Waxman mesh family member
	//   - "multiregion:<R>x<P>:<seed>" for a generated R-region topology
	//     with P PoPs per region
	Nets []string
	// MaxNets caps the expanded topology set (0 = no cap), keeping zoo
	// order so the class mix survives.
	MaxNets int
	// Seeds are the traffic-matrix seeds; each seed generates one
	// independent calibrated matrix per topology.
	Seeds []int64
	// Schemes are routing.ByName names (sp, b4, mplste, minmax,
	// minmax-k10, ldr).
	Schemes []string
	// Headrooms are the reserved-capacity points swept for schemes with
	// a headroom dial; schemes without one run once regardless. Default
	// {0}.
	Headrooms []float64
	// Load is the target min-cut utilization matrices are calibrated to
	// (default 1/1.3, the paper's standard point).
	Load float64
	// Locality is the traffic locality parameter ℓ (default 1).
	Locality float64
}

func (g Grid) withDefaults() Grid {
	if len(g.Headrooms) == 0 {
		g.Headrooms = []float64{0}
	}
	if g.Load <= 0 {
		g.Load = 1 / 1.3
	}
	if g.Locality == 0 {
		g.Locality = 1
	}
	return g
}

// validate rejects grids that cannot expand.
func (g Grid) validate() error {
	if len(g.Nets) == 0 {
		return fmt.Errorf("sweep: grid has no nets")
	}
	if len(g.Seeds) == 0 {
		return fmt.Errorf("sweep: grid has no seeds")
	}
	if len(g.Schemes) == 0 {
		return fmt.Errorf("sweep: grid has no schemes")
	}
	for _, name := range g.Schemes {
		if _, err := routing.ByName(name, 0); err != nil {
			return fmt.Errorf("%w (have %v)", err, routing.SchemeNames())
		}
	}
	return nil
}

// ParseGrid parses the compact grid syntax the CLI's -grid flag takes:
// semicolon-separated key=value pairs with comma-separated list values,
//
//	nets=gts-like,ring-12;seeds=1,2,3;schemes=sp,ldr;headrooms=0,0.11
//
// Keys: nets, max-nets, seeds, schemes, headrooms, load, locality.
func ParseGrid(spec string) (Grid, error) {
	var g Grid
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Grid{}, fmt.Errorf("sweep: grid term %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "nets":
			g.Nets = splitList(val)
		case "max-nets":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Grid{}, fmt.Errorf("sweep: bad max-nets %q", val)
			}
			g.MaxNets = n
		case "seeds":
			for _, s := range splitList(val) {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return Grid{}, fmt.Errorf("sweep: bad seed %q", s)
				}
				g.Seeds = append(g.Seeds, v)
			}
		case "schemes":
			g.Schemes = splitList(val)
		case "headrooms":
			for _, s := range splitList(val) {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil || v < 0 || v >= 1 {
					return Grid{}, fmt.Errorf("sweep: bad headroom %q", s)
				}
				g.Headrooms = append(g.Headrooms, v)
			}
		case "load":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v <= 0 || v > 1 {
				return Grid{}, fmt.Errorf("sweep: bad load %q", val)
			}
			g.Load = v
		case "locality":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 {
				return Grid{}, fmt.Errorf("sweep: bad locality %q", val)
			}
			g.Locality = v
		default:
			return Grid{}, fmt.Errorf("sweep: unknown grid key %q", key)
		}
	}
	return g, nil
}

func splitList(val string) []string {
	var out []string
	for _, s := range strings.Split(val, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// NetSpec is one resolved topology of a sweep (or of a daemon place
// request): the grid term expanded into a name, a structural class label
// and a built graph. Term preserves the single-network grid term that
// resolves back to exactly this topology ("ring-12",
// "randomgeo:30:7"...), so a cell planned here can be re-requested by
// coordinates from any placement backend — including a remote daemon that
// has never seen this process's graphs.
type NetSpec struct {
	Name  string
	Class string
	Term  string
	Graph *graph.Graph
}

// ResolveNet expands one grid nets term into exactly one built topology —
// the resolution path the serving daemon uses, so a cell requested online
// lands on the same content key a sweep over the same term produces.
// Terms that expand to several networks ("zoo", "class:<c>") are
// rejected.
func ResolveNet(term string) (NetSpec, error) {
	nets, err := resolveNets(Grid{Nets: []string{term}})
	if err != nil {
		return NetSpec{}, err
	}
	if len(nets) != 1 {
		return NetSpec{}, fmt.Errorf("sweep: net term %q expands to %d networks, want exactly one", term, len(nets))
	}
	return nets[0], nil
}

// resolveNets expands the grid's topology terms into built graphs,
// deduplicated by name, preserving first-mention order.
func resolveNets(g Grid) ([]NetSpec, error) {
	var out []NetSpec
	seen := make(map[string]bool)
	full := func() bool { return g.MaxNets > 0 && len(out) >= g.MaxNets }
	add := func(name, class, term string, build func() *graph.Graph) {
		// Checking the cap before build keeps "nets=zoo;max-nets=5" from
		// constructing the 111 graphs it would immediately discard.
		if !seen[name] && !full() {
			seen[name] = true
			out = append(out, NetSpec{Name: name, Class: class, Term: term, Graph: build()})
		}
	}
	for _, term := range g.Nets {
		switch {
		case term == "zoo":
			for _, e := range topo.Zoo() {
				add(e.Name, string(e.Class), e.Name, e.Build)
			}
		case strings.HasPrefix(term, "class:"):
			class := topo.Class(strings.TrimPrefix(term, "class:"))
			matched := false
			for _, e := range topo.Zoo() {
				if e.Class == class {
					matched = true
					add(e.Name, string(e.Class), e.Name, e.Build)
				}
			}
			if !matched {
				return nil, fmt.Errorf("sweep: no zoo networks of class %q", class)
			}
		case strings.HasPrefix(term, "randomgeo:"):
			name, build, err := parseRandomGeo(term)
			if err != nil {
				return nil, err
			}
			add(name, "generated", term, build)
		case strings.HasPrefix(term, "multiregion:"):
			name, build, err := parseMultiRegion(term)
			if err != nil {
				return nil, err
			}
			add(name, "generated", term, build)
		default:
			e, ok := topo.ByName(term)
			if !ok {
				return nil, fmt.Errorf("sweep: unknown network %q", term)
			}
			add(e.Name, string(e.Class), e.Name, e.Build)
		}
		if full() {
			break
		}
	}
	return out, nil
}

// parseRandomGeo expands "randomgeo:<n>:<seed>" into a deterministic
// Waxman mesh from the zoo generators' family (zoo "mesh" parameters).
func parseRandomGeo(term string) (string, func() *graph.Graph, error) {
	parts := strings.Split(term, ":")
	if len(parts) != 3 {
		return "", nil, fmt.Errorf("sweep: want randomgeo:<n>:<seed>, got %q", term)
	}
	n, err1 := strconv.Atoi(parts[1])
	seed, err2 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || n < 3 {
		return "", nil, fmt.Errorf("sweep: bad randomgeo spec %q", term)
	}
	name := fmt.Sprintf("randomgeo-%d-s%d", n, seed)
	return name, func() *graph.Graph {
		return topo.RandomGeo(name, n, 3200, 2300, 0.4, 0.3, topo.Cap10G, seed)
	}, nil
}

// parseMultiRegion expands "multiregion:<R>x<P>:<seed>" into a
// deterministic intercontinental topology (3 long-haul links per adjacent
// region pair, the zoo's middle setting).
func parseMultiRegion(term string) (string, func() *graph.Graph, error) {
	parts := strings.Split(term, ":")
	if len(parts) != 3 {
		return "", nil, fmt.Errorf("sweep: want multiregion:<R>x<P>:<seed>, got %q", term)
	}
	rp := strings.Split(parts[1], "x")
	if len(rp) != 2 {
		return "", nil, fmt.Errorf("sweep: bad multiregion shape %q", parts[1])
	}
	regions, err1 := strconv.Atoi(rp[0])
	per, err2 := strconv.Atoi(rp[1])
	seed, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || regions < 2 || per < 2 {
		return "", nil, fmt.Errorf("sweep: bad multiregion spec %q", term)
	}
	name := fmt.Sprintf("multiregion-%dx%d-s%d", regions, per, seed)
	return name, func() *graph.Graph {
		return topo.MultiRegion(name, regions, per, 1600, 5200, 3, topo.Cap40G, topo.Cap100G, seed)
	}, nil
}

// schemePoints expands schemes x headrooms, collapsing the headroom axis
// for schemes without a dial so they appear exactly once.
func schemePoints(g Grid) ([]routing.Scheme, error) {
	headrooms := append([]float64(nil), g.Headrooms...)
	sort.Float64s(headrooms)
	var out []routing.Scheme
	for _, name := range g.Schemes {
		probe, err := routing.ByName(name, 0.5)
		if err != nil {
			return nil, err
		}
		dialed := routing.Headroom(probe) != 0
		if !dialed {
			out = append(out, probe)
			continue
		}
		for _, h := range headrooms {
			s, err := routing.ByName(name, h)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}
