// Package sweep is the resumable sweep orchestrator: it expands a
// declarative Grid into scenario cells, consults the persistent result
// store for cells that already ran, dispatches only the missing ones
// through the parallel engine, and checkpoints each result the moment it
// lands. A sweep killed mid-run (power loss, kill -9, ctrl-C) is rerun
// against the same store and completes without recomputing a single
// finished cell — the property the paper's ~100x100xschemes landscape
// study needs to grow toward production scale one interrupted batch at a
// time.
package sweep

import (
	"context"
	"errors"
	"fmt"

	"lowlat/internal/engine"
	"lowlat/internal/routing"
	"lowlat/internal/store"
	"lowlat/internal/tmgen"
)

// Cell is one planned unit of sweep work with its resolved inputs and
// precomputed store key.
type Cell struct {
	Key  store.CellKey
	Meta store.Meta
	// Scenario holds the built graph, generated matrix and configured
	// scheme.
	Scenario engine.Scenario
}

// Plan expands a grid into cells in deterministic nested order (net x
// seed x scheme-point). Matrix generation — the calibration LP solves —
// fans out through a pool of the given width, but the returned order
// never depends on it.
//
// Because cell keys are content-derived, planning must regenerate every
// (net, seed) matrix to digest it, so a resume reuses all placement
// solves but still pays the calibration solves. A derivation-keyed
// digest memo could make resume near-free; it is deliberately left out
// until the calibration share of sweep time warrants trading away
// pure content addressing.
func Plan(ctx context.Context, grid Grid, workers int) ([]Cell, error) {
	grid = grid.withDefaults()
	if err := grid.validate(); err != nil {
		return nil, err
	}
	nets, err := resolveNets(grid)
	if err != nil {
		return nil, err
	}
	schemes, err := schemePoints(grid)
	if err != nil {
		return nil, err
	}

	// One calibrated matrix per (net, seed), generated concurrently.
	type job struct {
		net  int
		seed int64
	}
	var jobs []job
	for i := range nets {
		for _, seed := range grid.Seeds {
			jobs = append(jobs, job{net: i, seed: seed})
		}
	}
	mats, err := engine.Map(ctx, workers, jobs,
		func(_ context.Context, _ int, j job) (*tmgen.Result, error) {
			res, err := tmgen.Generate(nets[j.net].Graph, tmgen.Config{
				Seed:          j.seed,
				Locality:      grid.Locality,
				NoLocality:    grid.Locality == 0,
				TargetMaxUtil: grid.Load,
			})
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", nets[j.net].Name, j.seed, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	var cells []Cell
	for ji, j := range jobs {
		n := nets[j.net]
		m := mats[ji].Matrix
		for _, scheme := range schemes {
			cells = append(cells, Cell{
				Key: store.KeyFor(n.Graph, m, scheme),
				Meta: store.Meta{
					Net:      n.Name,
					Class:    n.Class,
					Seed:     j.seed,
					Scheme:   scheme.Name(),
					Headroom: routing.Headroom(scheme),
					Load:     grid.Load,
					Locality: grid.Locality,
				},
				Scenario: engine.Scenario{
					Tag:    fmt.Sprintf("%s/s%d/%s", n.Name, j.seed, scheme.Name()),
					Graph:  n.Graph,
					Matrix: m,
					Scheme: scheme,
				},
			})
		}
	}
	return cells, nil
}

// Report summarizes one orchestrator run.
type Report struct {
	// Planned is the grid's total cell count.
	Planned int
	// Reused cells were already in the store and never reached the
	// engine.
	Reused int
	// Computed cells went through a placement solve this run.
	Computed int
	// Failed cells errored; their errors are joined into Run's returned
	// error.
	Failed int
	// SkippedLines reports unparseable store lines tolerated when the
	// store was opened (a torn tail after a kill), surfaced here so
	// resuming callers see the recovery happen.
	SkippedLines int
}

// Options tunes Run.
type Options struct {
	// Workers bounds the engine pool (0 = one per CPU).
	Workers int
	// Recompute ignores store hits and re-places every cell (results
	// still checkpoint, superseding the stored ones).
	Recompute bool
	// OnResult, when non-nil, is called after each computed cell has
	// been checkpointed, with the count of cells computed so far this
	// run. Calls arrive in completion order, one at a time.
	OnResult func(computed int, r store.Result)
	// OnPlace, when non-nil, is called from a worker goroutine just
	// before each placement solve starts — the precise count of engine
	// invocations. Progress meters and interruption tests hang off it;
	// cancelling the run context inside OnPlace aborts the cell before
	// it computes.
	OnPlace func(c Cell)
}

// Run plans the grid, skips cells the store already holds, places the
// missing ones through the engine and checkpoints every result as it
// lands. The returned report counts reused versus computed cells; on
// cancellation or per-cell failure the error is returned *after* all
// landed results were persisted, so a rerun resumes instead of starting
// over.
func Run(ctx context.Context, st *store.Store, grid Grid, opts Options) (*Report, error) {
	cells, err := Plan(ctx, grid, opts.Workers)
	if err != nil {
		return nil, err
	}
	rep := &Report{Planned: len(cells), SkippedLines: st.Skipped()}

	var missing []Cell
	for _, c := range cells {
		if !opts.Recompute {
			if _, ok := st.Get(c.Key); ok {
				rep.Reused++
				continue
			}
		}
		missing = append(missing, c)
	}
	if len(missing) == 0 {
		return rep, nil
	}

	// Cells go through engine.Stream against one shared solver cache (the
	// same fan-out shape Runner gives the figure drivers), with the
	// OnPlace probe ahead of each solve so the engine-invocation count is
	// observable and a cancellation between cells skips the solve.
	cache := engine.NewRunner(opts.Workers).Cache()
	place := func(ctx context.Context, _ int, c Cell) (store.Result, error) {
		if opts.OnPlace != nil {
			opts.OnPlace(c)
		}
		if err := ctx.Err(); err != nil {
			return store.Result{}, err
		}
		p, err := cache.Place(c.Scenario.Scheme, c.Scenario.Graph, c.Scenario.Matrix)
		if err != nil {
			return store.Result{}, fmt.Errorf("%s: %w", c.Scenario.Tag, err)
		}
		return store.Result{Key: c.Key, Meta: c.Meta, Metrics: store.MetricsOf(p)}, nil
	}
	var errs []error
	for res := range engine.Stream(ctx, opts.Workers, missing, place) {
		if res.Err != nil {
			if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, context.DeadlineExceeded) {
				rep.Failed++
				errs = append(errs, res.Err)
			}
			continue
		}
		result := res.Value
		if err := st.Put(result); err != nil {
			// A checkpoint failure poisons resumability; stop the sweep.
			return rep, fmt.Errorf("sweep: checkpoint: %w", err)
		}
		rep.Computed++
		if opts.OnResult != nil {
			opts.OnResult(rep.Computed, result)
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("sweep: %d of %d cells failed: %w", rep.Failed, rep.Planned, errors.Join(errs...))
	}
	return rep, nil
}
