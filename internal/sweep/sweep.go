// Package sweep is the resumable sweep orchestrator: it expands a
// declarative Grid into scenario cells, consults the persistent result
// store for cells that already ran, dispatches only the missing ones
// through the parallel engine, and checkpoints each result the moment it
// lands. A sweep killed mid-run (power loss, kill -9, ctrl-C) is rerun
// against the same store and completes without recomputing a single
// finished cell — the property the paper's ~100x100xschemes landscape
// study needs to grow toward production scale one interrupted batch at a
// time.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lowlat/internal/engine"
	"lowlat/internal/graph"
	"lowlat/internal/obs"
	"lowlat/internal/routing"
	"lowlat/internal/store"
	"lowlat/internal/tm"
	"lowlat/internal/tmgen"
)

// Cell is one planned unit of sweep work with its resolved inputs and
// precomputed store key.
type Cell struct {
	Key  store.CellKey
	Meta store.Meta
	// Spec re-addresses the cell by request coordinates (net term, seed,
	// scheme, operating point) — what Run sends to a remote placement
	// backend instead of the in-process Scenario.
	Spec store.CellSpec
	// Scenario holds the built graph, generated matrix and configured
	// scheme.
	Scenario engine.Scenario
}

// Placer dispatches one cell computation by request coordinates. It is
// the seam Run farms missing cells out through: any placement backend —
// a local engine, one remote daemon, a consistent-hash cluster of them —
// satisfies it (the full interface lives in internal/backend; this is
// the one method a sweep needs).
type Placer interface {
	Place(ctx context.Context, spec store.CellSpec) (store.Result, error)
}

// GenerateMatrix builds the calibrated traffic matrix for one (graph,
// seed) pair at a (load, locality) operating point exactly the way sweep
// planning does, so cells computed elsewhere (the serving daemon's
// /v1/place path) land on the same content keys a sweep produces. When
// st is a writable store, the matrix digest is memoized under
// store.MemoKeyFor so later plans can derive this cell's keys without
// re-running the calibration solves; generation is deterministic in
// (graph, seed, load, locality), which is what makes the memo sound.
func GenerateMatrix(g *graph.Graph, seed int64, load, locality float64, st *store.Store) (*tm.Matrix, error) {
	res, err := tmgen.Generate(g, tmgen.Config{
		Seed:          seed,
		Locality:      locality,
		NoLocality:    locality == 0,
		TargetMaxUtil: load,
	})
	if err != nil {
		return nil, err
	}
	if st != nil && !st.ReadOnly() {
		if err := st.PutMemo(store.MemoKeyFor(g, seed, load, locality),
			store.MatrixDigest(g, res.Matrix)); err != nil {
			return nil, err
		}
	}
	return res.Matrix, nil
}

// Plan expands a grid into cells in deterministic nested order (net x
// seed x scheme-point), regenerating every (net, seed) matrix. Matrix
// generation — the calibration LP solves — fans out through a pool of
// the given width, but the returned order never depends on it. Run uses
// the store-aware planner instead, which consults the calibration memo
// to skip regeneration for fully-stored groups.
func Plan(ctx context.Context, grid Grid, workers int) ([]Cell, error) {
	cells, _, err := planWithStore(ctx, grid, workers, nil, false)
	return cells, err
}

// planStats counts what planning cost and what the memo saved.
type planStats struct {
	// generated counts (net, seed) matrices that went through the
	// calibration solves this plan.
	generated int
	// memoHits counts (net, seed) groups whose keys came from the
	// calibration memo with every cell already stored, skipping
	// generation entirely.
	memoHits int
}

// planWithStore is Plan with a store consult. For each (net, seed) group
// it first tries the store's calibration memo: a memoized matrix digest
// yields every cell key in the group without generating the matrix, and
// when all of those keys are already stored (and the caller is not
// recomputing), the group's cells are planned with a nil Scenario.Matrix
// — they can never reach the engine, so the matrix is dead weight. Any
// group with a memo miss or a missing cell regenerates its matrix (and
// refreshes the memo). Cell order is identical either way.
func planWithStore(ctx context.Context, grid Grid, workers int, st *store.Store, skipStored bool) ([]Cell, planStats, error) {
	var stats planStats
	grid = grid.withDefaults()
	if err := grid.validate(); err != nil {
		return nil, stats, err
	}
	nets, err := resolveNets(grid)
	if err != nil {
		return nil, stats, err
	}
	schemes, err := schemePoints(grid)
	if err != nil {
		return nil, stats, err
	}

	type job struct {
		net  int
		seed int64
	}
	var jobs []job
	for i := range nets {
		for _, seed := range grid.Seeds {
			jobs = append(jobs, job{net: i, seed: seed})
		}
	}

	// Memo pass: groups whose every cell is already stored keep their
	// memoized matrix digest and skip generation.
	memoed := make([]store.Digest, len(jobs))
	needGen := make([]bool, len(jobs))
	var genJobs []int
	for ji, j := range jobs {
		needGen[ji] = true
		if st == nil || !skipStored {
			genJobs = append(genJobs, ji)
			continue
		}
		n := nets[j.net]
		md, ok := st.Memo(store.MemoKeyFor(n.Graph, j.seed, grid.Load, grid.Locality))
		if ok {
			allStored := true
			for _, scheme := range schemes {
				k := store.CellKey{
					Graph:  store.Digest(n.Graph.Fingerprint()),
					Matrix: md,
					Scheme: scheme.Name(),
					Config: store.ConfigDigest(scheme),
				}
				if _, found := st.Get(k); !found {
					allStored = false
					break
				}
			}
			if allStored {
				memoed[ji] = md
				needGen[ji] = false
				stats.memoHits++
				continue
			}
		}
		genJobs = append(genJobs, ji)
	}

	// One calibrated matrix per remaining (net, seed), generated
	// concurrently.
	mats := make([]*tm.Matrix, len(jobs))
	gen, err := engine.Map(ctx, workers, genJobs,
		func(_ context.Context, _ int, ji int) (*tm.Matrix, error) {
			j := jobs[ji]
			m, err := GenerateMatrix(nets[j.net].Graph, j.seed, grid.Load, grid.Locality, st)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", nets[j.net].Name, j.seed, err)
			}
			return m, nil
		})
	if err != nil {
		return nil, stats, err
	}
	for gi, ji := range genJobs {
		mats[ji] = gen[gi]
	}
	stats.generated = len(genJobs)

	var cells []Cell
	for ji, j := range jobs {
		n := nets[j.net]
		m := mats[ji]
		for _, scheme := range schemes {
			key := store.CellKey{
				Graph:  store.Digest(n.Graph.Fingerprint()),
				Matrix: memoed[ji],
				Scheme: scheme.Name(),
				Config: store.ConfigDigest(scheme),
			}
			if needGen[ji] {
				key = store.KeyFor(n.Graph, m, scheme)
			}
			cells = append(cells, Cell{
				Key: key,
				Meta: store.Meta{
					Net:      n.Name,
					Class:    n.Class,
					Seed:     j.seed,
					Scheme:   scheme.Name(),
					Headroom: routing.Headroom(scheme),
					Load:     grid.Load,
					Locality: grid.Locality,
				},
				Spec: store.CellSpec{
					Net:      n.Term,
					Seed:     j.seed,
					Scheme:   scheme.Name(),
					Headroom: routing.Headroom(scheme),
					Load:     grid.Load,
					Locality: grid.Locality,
				},
				Scenario: engine.Scenario{
					Tag:    fmt.Sprintf("%s/s%d/%s", n.Name, j.seed, scheme.Name()),
					Graph:  n.Graph,
					Matrix: m,
					Scheme: scheme,
				},
			})
		}
	}
	return cells, stats, nil
}

// Report summarizes one orchestrator run.
type Report struct {
	// Planned is the grid's total cell count.
	Planned int
	// Reused cells were already in the store and never reached the
	// engine.
	Reused int
	// Computed cells went through a placement solve this run.
	Computed int
	// Failed cells errored; their errors are joined into Run's returned
	// error.
	Failed int
	// Generated counts (net, seed) matrices that went through the
	// calibration solves this run.
	Generated int
	// MemoHits counts (net, seed) groups whose cell keys came from the
	// store's calibration memo with every cell already stored, so the
	// group skipped matrix regeneration entirely — what makes resuming a
	// finished (or nearly finished) sweep near-free.
	MemoHits int
	// SkippedLines reports unparseable store lines tolerated when the
	// store was opened (a torn tail after a kill), surfaced here so
	// resuming callers see the recovery happen.
	SkippedLines int
}

// Options tunes Run.
type Options struct {
	// Workers bounds the engine pool (0 = one per CPU). With a Backend
	// set it bounds concurrent outstanding Place dispatches instead.
	Workers int
	// Recompute ignores store hits and re-places every cell (results
	// still checkpoint, superseding the stored ones).
	Recompute bool
	// Backend, when non-nil, farms missing cells out by request
	// coordinates instead of solving them in-process — a sweep pointed at
	// a remote daemon (or a consistent-hash cluster of them) becomes a
	// driver for that cluster's compute, and every returned result still
	// checkpoints into the local store so the sweep stays resumable.
	// Matrices are still generated locally (planning needs the content
	// keys to know which cells are missing); only the placement solves
	// move.
	Backend Placer
	// OnResult, when non-nil, is called after each computed cell has
	// been checkpointed, with the count of cells computed so far this
	// run. Calls arrive in completion order, one at a time.
	OnResult func(computed int, r store.Result)
	// Observer, when non-nil, receives every result the sweep touches —
	// reused cells during planning and computed cells right after they
	// checkpoint. It is the incremental-retrain hook for a predictive
	// index (predict.Index and backend.Predictive both implement it):
	// one Run leaves the observer trained on the whole swept grid,
	// however much of it a previous run already covered. Reused-cell
	// calls arrive from the planning loop, computed-cell calls from the
	// checkpoint loop, never concurrently.
	Observer interface{ Observe(r store.Result) }
	// OnPlace, when non-nil, is called from a worker goroutine just
	// before each placement solve starts — the precise count of engine
	// invocations. Progress meters and interruption tests hang off it;
	// cancelling the run context inside OnPlace aborts the cell before
	// it computes.
	OnPlace func(c Cell)
	// Obs, when non-nil, receives one sweep_place observation per cell
	// dispatch (in-process solve or backend farm-out alike), so a sweep's
	// per-cell latency distribution is reportable the same way a daemon's
	// serving stages are. Nil records nothing.
	Obs *obs.Registry
}

// Run plans the grid, skips cells the store already holds, places the
// missing ones through the engine and checkpoints every result as it
// lands. The returned report counts reused versus computed cells; on
// cancellation or per-cell failure the error is returned *after* all
// landed results were persisted, so a rerun resumes instead of starting
// over.
func Run(ctx context.Context, st *store.Store, grid Grid, opts Options) (*Report, error) {
	cells, stats, err := planWithStore(ctx, grid, opts.Workers, st, !opts.Recompute)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Planned:      len(cells),
		Generated:    stats.generated,
		MemoHits:     stats.memoHits,
		SkippedLines: st.Skipped(),
	}

	var missing []Cell
	for _, c := range cells {
		if !opts.Recompute {
			if r, ok := st.Get(c.Key); ok {
				rep.Reused++
				if opts.Observer != nil {
					opts.Observer.Observe(r)
				}
				continue
			}
		}
		missing = append(missing, c)
	}
	if len(missing) == 0 {
		return rep, nil
	}

	// Cells go through engine.Stream against one shared solver cache (the
	// same fan-out shape Runner gives the figure drivers), with the
	// OnPlace probe ahead of each solve so the engine-invocation count is
	// observable and a cancellation between cells skips the solve. With a
	// Backend set the solve is one Place dispatch instead — same pool,
	// same ordering guarantees, but the engine work happens wherever the
	// backend routes it.
	var place func(ctx context.Context, _ int, c Cell) (store.Result, error)
	if opts.Backend != nil {
		place = func(ctx context.Context, _ int, c Cell) (store.Result, error) {
			if opts.OnPlace != nil {
				opts.OnPlace(c)
			}
			if err := ctx.Err(); err != nil {
				return store.Result{}, err
			}
			t0 := time.Now()
			res, err := opts.Backend.Place(ctx, c.Spec)
			opts.Obs.Observe(ctx, obs.StageSweepPlace, time.Since(t0))
			if err != nil {
				return store.Result{}, fmt.Errorf("%s: %w", c.Scenario.Tag, err)
			}
			if res.Key != c.Key {
				// A backend disagreeing on content identity means its code
				// or zoo drifted from ours; checkpointing its answer under
				// our key would poison the store silently.
				return store.Result{}, fmt.Errorf("%s: backend returned key %s, planned %s (version drift?)",
					c.Scenario.Tag, res.Key, c.Key)
			}
			return res, nil
		}
	} else {
		cache := engine.NewRunner(opts.Workers).Cache()
		place = func(ctx context.Context, _ int, c Cell) (store.Result, error) {
			if opts.OnPlace != nil {
				opts.OnPlace(c)
			}
			if err := ctx.Err(); err != nil {
				return store.Result{}, err
			}
			t0 := time.Now()
			p, err := cache.Place(c.Scenario.Scheme, c.Scenario.Graph, c.Scenario.Matrix)
			opts.Obs.Observe(ctx, obs.StageSweepPlace, time.Since(t0))
			if err != nil {
				return store.Result{}, fmt.Errorf("%s: %w", c.Scenario.Tag, err)
			}
			return store.Result{Key: c.Key, Meta: c.Meta, Metrics: store.MetricsOf(p)}, nil
		}
	}
	var errs []error
	for res := range engine.Stream(ctx, opts.Workers, missing, place) {
		if res.Err != nil {
			if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, context.DeadlineExceeded) {
				rep.Failed++
				errs = append(errs, res.Err)
			}
			continue
		}
		result := res.Value
		if err := st.Put(result); err != nil {
			// A checkpoint failure poisons resumability; stop the sweep.
			return rep, fmt.Errorf("sweep: checkpoint: %w", err)
		}
		rep.Computed++
		if opts.Observer != nil {
			opts.Observer.Observe(result)
		}
		if opts.OnResult != nil {
			opts.OnResult(rep.Computed, result)
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("sweep: %d of %d cells failed: %w", rep.Failed, rep.Planned, errors.Join(errs...))
	}
	return rep, nil
}
