package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lowlat/internal/store"
)

// testGrid is small enough to run in -short mode but crosses two nets,
// two seeds and two schemes (8 cells).
func testGrid() Grid {
	return Grid{
		Nets:    []string{"star-6", "ring-8"},
		Seeds:   []int64{1, 2},
		Schemes: []string{"sp", "minmax"},
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("nets=gts-like, ring-12;seeds=1,2,3;schemes=sp,ldr;headrooms=0,0.11;load=0.6;locality=2;max-nets=5")
	if err != nil {
		t.Fatal(err)
	}
	want := Grid{
		Nets:      []string{"gts-like", "ring-12"},
		MaxNets:   5,
		Seeds:     []int64{1, 2, 3},
		Schemes:   []string{"sp", "ldr"},
		Headrooms: []float64{0, 0.11},
		Load:      0.6,
		Locality:  2,
	}
	if !reflect.DeepEqual(g, want) {
		t.Fatalf("ParseGrid = %+v, want %+v", g, want)
	}
	for _, bad := range []string{
		"nets",                  // not key=value
		"seeds=x",               // bad seed
		"headrooms=1.5",         // out of range
		"load=0",                // out of range
		"frobs=1",               // unknown key
		"schemes=sp;nets=a;b=c", // unknown key mid-spec
	} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted", bad)
		}
	}
}

func TestPlanExpansion(t *testing.T) {
	ctx := context.Background()
	grid := testGrid()
	grid.Schemes = []string{"sp", "ldr"}
	grid.Headrooms = []float64{0, 0.2}
	cells, err := Plan(ctx, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	// sp has no headroom dial (1 point), ldr has 2 points: 2 nets x 2
	// seeds x 3 scheme points.
	if len(cells) != 12 {
		t.Fatalf("planned %d cells, want 12", len(cells))
	}
	seen := make(map[store.CellKey]bool)
	for _, c := range cells {
		if seen[c.Key] {
			t.Fatalf("duplicate cell key %v", c.Key)
		}
		seen[c.Key] = true
	}
	// Planning twice gives identical cells in identical order.
	again, err := Plan(ctx, grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Key != again[i].Key || cells[i].Meta != again[i].Meta {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
}

func TestPlanResolvesGeneratorsAndClasses(t *testing.T) {
	cells, err := Plan(context.Background(), Grid{
		Nets:    []string{"randomgeo:12:7", "multiregion:2x6:3", "class:clique"},
		MaxNets: 4,
		Seeds:   []int64{1},
		Schemes: []string{"sp"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var nets []string
	for _, c := range cells {
		nets = append(nets, c.Meta.Net)
	}
	want := []string{"randomgeo-12-s7", "multiregion-2x6-s3", "clique-5", "clique-6"}
	if !reflect.DeepEqual(nets, want) {
		t.Fatalf("nets = %v, want %v", nets, want)
	}
	for _, bad := range []string{"randomgeo:12", "multiregion:2:3", "class:nope", "no-such-net"} {
		if _, err := Plan(context.Background(), Grid{
			Nets: []string{bad}, Seeds: []int64{1}, Schemes: []string{"sp"},
		}, 0); err == nil {
			t.Errorf("net term %q accepted", bad)
		}
	}
}

// TestKillAndResume is the subsystem's acceptance test: a sweep
// interrupted after N cells, rerun against the same store, computes only
// the remaining cells (asserted via engine invocation counts) and the
// final export is byte-identical to an uninterrupted run's — including
// after the store's final shard line is torn as by a kill -9 mid-append.
func TestKillAndResume(t *testing.T) {
	ctx := context.Background()
	grid := testGrid()

	// Reference: one uninterrupted run.
	refStore, err := store.OpenSharded(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refRep, err := Run(ctx, refStore, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refRep.Planned != 8 || refRep.Computed != 8 || refRep.Reused != 0 {
		t.Fatalf("reference report = %+v, want 8 planned, 8 computed", refRep)
	}
	var refCSV bytes.Buffer
	if err := Export(&refCSV, refStore, Filter{}, "csv"); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: kill the context as the 4th placement is about to
	// start. Workers:1 makes the cut deterministic — exactly 3 cells
	// compute and checkpoint.
	dir := t.TempDir()
	st, err := store.OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	places := 0
	rep1, err := Run(cctx, st, grid, Options{
		Workers: 1,
		OnPlace: func(Cell) {
			places++
			if places == 4 {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if rep1.Computed != 3 {
		t.Fatalf("interrupted run computed %d cells, want 3", rep1.Computed)
	}
	st.Close()

	// The kill can also tear the final checkpoint line mid-append;
	// simulate it and verify recovery reporting.
	shard := filepath.Join(dir, "shard-000.jsonl")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	survived := rep1.Computed - 1 // the torn line lost one cell
	if st2.Len() != survived || st2.Skipped() != 1 {
		t.Fatalf("recovered store: Len=%d Skipped=%d, want %d, 1", st2.Len(), st2.Skipped(), survived)
	}

	// Resume: only the missing cells may reach the engine, counted at
	// the placement call itself.
	invocations := 0
	rep2, err := Run(ctx, st2, grid, Options{
		Workers: 1,
		OnPlace: func(Cell) { invocations++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SkippedLines != 1 {
		t.Fatalf("resume report did not surface the torn line: %+v", rep2)
	}
	if invocations != 8-survived {
		t.Fatalf("resume made %d engine invocations, want %d", invocations, 8-survived)
	}
	if rep2.Reused != survived || rep2.Computed != 8-survived {
		t.Fatalf("resume report = %+v, want %d reused, %d computed", rep2, survived, 8-survived)
	}

	var gotCSV bytes.Buffer
	if err := Export(&gotCSV, st2, Filter{}, "csv"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Fatalf("resumed export differs from uninterrupted export:\n--- resumed\n%s\n--- reference\n%s",
			gotCSV.String(), refCSV.String())
	}

	// A third run is a pure no-op.
	rep3, err := Run(ctx, st2, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Computed != 0 || rep3.Reused != 8 {
		t.Fatalf("no-op rerun report = %+v, want 0 computed, 8 reused", rep3)
	}
}

// TestMemoSkipsRegeneration pins the calibration-memo satellite: a rerun
// of a finished sweep derives every cell key from the store's memo and
// performs zero matrix generations, yet plans exactly the keys a fresh,
// fully generating Plan produces — the seeded-generator determinism that
// anchors the memo's soundness.
func TestMemoSkipsRegeneration(t *testing.T) {
	ctx := context.Background()
	grid := testGrid()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rep1, err := Run(ctx, st, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 nets x 2 seeds = 4 calibration groups, all generated cold.
	if rep1.Generated != 4 || rep1.MemoHits != 0 {
		t.Fatalf("cold run: Generated=%d MemoHits=%d, want 4, 0", rep1.Generated, rep1.MemoHits)
	}
	if st.MemoLen() != 4 {
		t.Fatalf("MemoLen=%d after cold run, want 4", st.MemoLen())
	}

	rep2, err := Run(ctx, st, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Generated != 0 || rep2.MemoHits != 4 || rep2.Reused != 8 || rep2.Computed != 0 {
		t.Fatalf("warm run: %+v, want 0 generated, 4 memo hits, 8 reused", rep2)
	}

	// Memoized keys must be exactly the keys full regeneration derives.
	fresh, err := Plan(ctx, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	memoed, stats, err := planWithStore(ctx, grid, 1, st, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.generated != 0 || stats.memoHits != 4 {
		t.Fatalf("memo plan stats = %+v, want 0 generated, 4 memo hits", stats)
	}
	for i := range fresh {
		if fresh[i].Key != memoed[i].Key || fresh[i].Meta != memoed[i].Meta {
			t.Fatalf("memoized plan diverges at %d: %+v vs %+v", i, memoed[i], fresh[i])
		}
		if memoed[i].Scenario.Matrix != nil {
			t.Fatalf("memoized cell %d carries a matrix it should have skipped", i)
		}
	}

	// A widened grid invalidates its groups (new scheme point missing),
	// so those groups regenerate — and only the new cells compute.
	wide := grid
	wide.Schemes = append(append([]string(nil), grid.Schemes...), "ldr")
	rep3, err := Run(ctx, st, wide, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Generated != 4 || rep3.MemoHits != 0 || rep3.Reused != 8 || rep3.Computed != 4 {
		t.Fatalf("widened run: %+v, want 4 generated, 8 reused, 4 computed", rep3)
	}

	// Recompute bypasses the memo shortcut entirely.
	rep4, err := Run(ctx, st, grid, Options{Workers: 1, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Generated != 4 || rep4.MemoHits != 0 || rep4.Computed != 8 {
		t.Fatalf("recompute run: %+v, want 4 generated, 8 computed", rep4)
	}
}

func TestResolveNet(t *testing.T) {
	n, err := ResolveNet("randomgeo:12:7")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "randomgeo-12-s7" || n.Class != "generated" || n.Graph == nil {
		t.Fatalf("ResolveNet = %+v", n)
	}
	for _, bad := range []string{"zoo", "class:ring", "no-such-net"} {
		if _, err := ResolveNet(bad); err == nil {
			t.Errorf("ResolveNet(%q) accepted", bad)
		}
	}
}

func TestRecomputeOverridesStore(t *testing.T) {
	ctx := context.Background()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	grid := Grid{Nets: []string{"star-6"}, Seeds: []int64{1}, Schemes: []string{"sp"}}
	if _, err := Run(ctx, st, grid, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, st, grid, Options{Workers: 1, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 1 || rep.Reused != 0 {
		t.Fatalf("recompute report = %+v, want 1 computed", rep)
	}
}

func TestQueryAndExportFilters(t *testing.T) {
	ctx := context.Background()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Run(ctx, st, testGrid(), Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	if got := len(Query(st, Filter{})); got != 8 {
		t.Fatalf("unfiltered query = %d cells, want 8", got)
	}
	if got := len(Query(st, Filter{Net: "star"})); got != 4 {
		t.Fatalf("net filter = %d cells, want 4", got)
	}
	if got := len(Query(st, Filter{Scheme: "minmax"})); got != 4 {
		t.Fatalf("scheme filter = %d cells, want 4", got)
	}
	seed := int64(2)
	if got := len(Query(st, Filter{Seed: &seed, Net: "ring"})); got != 2 {
		t.Fatalf("seed+net filter = %d cells, want 2", got)
	}
	if got := len(Query(st, Filter{Class: "ring"})); got != 4 {
		t.Fatalf("class filter = %d cells, want 4", got)
	}

	var csvOut bytes.Buffer
	if err := Export(&csvOut, st, Filter{Scheme: "sp"}, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv export has %d lines, want header + 4 rows:\n%s", len(lines), csvOut.String())
	}
	if !strings.HasPrefix(lines[0], "net,class,seed,tm,scheme,headroom") {
		t.Fatalf("csv header = %q", lines[0])
	}

	var jsonOut bytes.Buffer
	if err := Export(&jsonOut, st, Filter{Net: "no-such"}, "json"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(jsonOut.String()) != "[]" {
		t.Fatalf("empty json export = %q, want []", jsonOut.String())
	}
	if err := Export(&jsonOut, st, Filter{}, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// observerLog records Observe calls so the retrain hook's contract is
// pinned: computed cells arrive as they checkpoint, reused cells arrive
// during planning, and one Run covers the whole grid either way.
type observerLog struct{ results []store.Result }

func (o *observerLog) Observe(r store.Result) { o.results = append(o.results, r) }

func TestObserverSeesComputedAndReused(t *testing.T) {
	st, err := store.OpenSharded(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	grid := testGrid()

	var first observerLog
	rep, err := Run(context.Background(), st, grid, Options{Workers: 1, Observer: &first})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.results) != rep.Computed || rep.Computed == 0 {
		t.Fatalf("first run observed %d results, want the %d computed", len(first.results), rep.Computed)
	}

	// A resumed run computes nothing, but the observer still sees every
	// reused cell — one Run trains an index on the whole grid.
	var second observerLog
	rep, err = Run(context.Background(), st, grid, Options{Workers: 1, Observer: &second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 0 || len(second.results) != rep.Reused {
		t.Fatalf("resumed run observed %d results, want the %d reused (computed %d)",
			len(second.results), rep.Reused, rep.Computed)
	}
	seen := make(map[store.CellKey]bool)
	for _, r := range second.results {
		if r.Key == (store.CellKey{}) {
			t.Fatal("observer saw a keyless result")
		}
		seen[r.Key] = true
	}
	if len(seen) != rep.Planned {
		t.Fatalf("observer saw %d distinct cells, want all %d planned", len(seen), rep.Planned)
	}
}
