package tm

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"lowlat/internal/graph"
)

// Marshal renders a matrix in the library's plain-text format:
//
//	tm <topology-name>
//	agg <src> <dst> <volume-bps> <flows> [weight]
//
// Node names come from the graph the matrix was generated for.
func Marshal(g *graph.Graph, m *Matrix) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "tm %s\n", g.Name())
	for _, a := range m.Aggregates {
		fmt.Fprintf(&buf, "agg %s %s %g %d",
			g.Node(a.Src).Name, g.Node(a.Dst).Name, a.Volume, a.Flows)
		if a.Weight != 0 && a.Weight != 1 {
			fmt.Fprintf(&buf, " %g", a.Weight)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Unmarshal parses the text format produced by Marshal, resolving node
// names against g.
func Unmarshal(g *graph.Graph, data []byte) (*Matrix, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var aggs []Aggregate
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "tm":
			if sawHeader {
				return nil, fmt.Errorf("tm: line %d: duplicate header", lineNo)
			}
			sawHeader = true
		case "agg":
			if !sawHeader {
				return nil, fmt.Errorf("tm: line %d: agg before header", lineNo)
			}
			if len(f) != 5 && len(f) != 6 {
				return nil, fmt.Errorf("tm: line %d: want 5 or 6 fields, got %d", lineNo, len(f))
			}
			src, ok := g.NodeByName(f[1])
			if !ok {
				return nil, fmt.Errorf("tm: line %d: unknown node %q", lineNo, f[1])
			}
			dst, ok := g.NodeByName(f[2])
			if !ok {
				return nil, fmt.Errorf("tm: line %d: unknown node %q", lineNo, f[2])
			}
			vol, err := strconv.ParseFloat(f[3], 64)
			if err != nil || vol < 0 {
				return nil, fmt.Errorf("tm: line %d: bad volume %q", lineNo, f[3])
			}
			flows, err := strconv.Atoi(f[4])
			if err != nil || flows < 0 {
				return nil, fmt.Errorf("tm: line %d: bad flow count %q", lineNo, f[4])
			}
			a := Aggregate{Src: src.ID, Dst: dst.ID, Volume: vol, Flows: flows}
			if len(f) == 6 {
				w, err := strconv.ParseFloat(f[5], 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("tm: line %d: bad weight %q", lineNo, f[5])
				}
				a.Weight = w
			}
			aggs = append(aggs, a)
		default:
			return nil, fmt.Errorf("tm: line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("tm: missing header")
	}
	return New(aggs), nil
}
