package tm

import (
	"strings"
	"testing"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

func serNet(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("sernet")
	a := b.AddNode("alpha", geo.Point{})
	z := b.AddNode("zeta", geo.Point{})
	c := b.AddNode("gamma", geo.Point{})
	b.AddBiLink(a, z, 10e9, 0.001)
	b.AddBiLink(z, c, 10e9, 0.001)
	return b.MustBuild()
}

func TestTMSerializeRoundTrip(t *testing.T) {
	g := serNet(t)
	a, _ := g.NodeByName("alpha")
	z, _ := g.NodeByName("zeta")
	c, _ := g.NodeByName("gamma")
	m := New([]Aggregate{
		{Src: a.ID, Dst: z.ID, Volume: 1.5e9, Flows: 1500},
		{Src: z.ID, Dst: c.ID, Volume: 2e9, Flows: 2000, Weight: 4},
		{Src: c.ID, Dst: a.ID, Volume: 0.5e9, Flows: 500},
	})
	back, err := Unmarshal(g, Marshal(g, m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() {
		t.Fatalf("len %d, want %d", back.Len(), m.Len())
	}
	for i := range m.Aggregates {
		if m.Aggregates[i] != back.Aggregates[i] {
			t.Fatalf("aggregate %d: %+v != %+v", i, m.Aggregates[i], back.Aggregates[i])
		}
	}
}

func TestTMUnmarshalErrors(t *testing.T) {
	g := serNet(t)
	cases := map[string]string{
		"no header":        "agg alpha zeta 1e9 100\n",
		"double header":    "tm x\ntm y\n",
		"unknown src":      "tm x\nagg nope zeta 1e9 100\n",
		"unknown dst":      "tm x\nagg alpha nope 1e9 100\n",
		"bad volume":       "tm x\nagg alpha zeta abc 100\n",
		"negative volume":  "tm x\nagg alpha zeta -5 100\n",
		"bad flows":        "tm x\nagg alpha zeta 1e9 ten\n",
		"bad weight":       "tm x\nagg alpha zeta 1e9 100 -2\n",
		"too many fields":  "tm x\nagg alpha zeta 1e9 100 2 7\n",
		"unknown keyword":  "tm x\nfoo bar\n",
		"empty everything": "",
	}
	for name, src := range cases {
		if _, err := Unmarshal(g, []byte(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestTMUnmarshalSkipsCommentsAndBlanks(t *testing.T) {
	g := serNet(t)
	src := "# traffic for sernet\n\ntm sernet\n# one aggregate\nagg alpha zeta 1e9 100\n\n"
	m, err := Unmarshal(g, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
}

func TestTMMarshalOmitsDefaultWeight(t *testing.T) {
	g := serNet(t)
	a, _ := g.NodeByName("alpha")
	z, _ := g.NodeByName("zeta")
	out := string(Marshal(g, New([]Aggregate{{Src: a.ID, Dst: z.ID, Volume: 1e9, Flows: 10, Weight: 1}})))
	if strings.Contains(strings.TrimSpace(strings.Split(out, "\n")[1]), " 1\n") {
		t.Fatalf("default weight must be omitted: %q", out)
	}
	fields := strings.Fields(strings.Split(out, "\n")[1])
	if len(fields) != 5 {
		t.Fatalf("want 5 fields for default weight, got %d: %q", len(fields), out)
	}
}
