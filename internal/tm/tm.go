// Package tm defines traffic matrices: sets of traffic aggregates between
// PoP pairs. An aggregate is the unit the paper's routing schemes place
// onto paths (the "a" of the Figure 12 LP), carrying a mean volume B_a and
// a flow count n_a.
package tm

import (
	"fmt"
	"sort"

	"lowlat/internal/graph"
)

// Aggregate is the traffic demand between one ordered PoP pair.
type Aggregate struct {
	Src    graph.NodeID
	Dst    graph.NodeID
	Volume float64 // mean demand in bits per second (B_a)
	Flows  int     // approximate number of flows (n_a)
	// Weight prioritizes the aggregate's delay in the latency
	// optimization (§8, "Extension to differentiated traffic classes"):
	// delay-sensitive classes get Weight > 1, best-effort 1. Zero means
	// the default weight of 1.
	Weight float64
}

// EffectiveWeight returns the priority weight, defaulting to 1.
func (a Aggregate) EffectiveWeight() float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// Matrix is a set of aggregates, at most one per ordered pair.
type Matrix struct {
	Aggregates []Aggregate
}

// New returns a Matrix over a copy of the aggregates, dropping zero-volume
// entries and sorting by (src, dst) for determinism.
func New(aggs []Aggregate) *Matrix {
	out := make([]Aggregate, 0, len(aggs))
	for _, a := range aggs {
		if a.Volume > 0 {
			if a.Flows <= 0 {
				a.Flows = 1
			}
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return &Matrix{Aggregates: out}
}

// Scale returns a new Matrix with every volume multiplied by f.
func (m *Matrix) Scale(f float64) *Matrix {
	out := make([]Aggregate, len(m.Aggregates))
	copy(out, m.Aggregates)
	for i := range out {
		out[i].Volume *= f
	}
	return &Matrix{Aggregates: out}
}

// TotalVolume returns the sum of all aggregate volumes in bits per second.
func (m *Matrix) TotalVolume() float64 {
	sum := 0.0
	for _, a := range m.Aggregates {
		sum += a.Volume
	}
	return sum
}

// Len returns the number of aggregates.
func (m *Matrix) Len() int { return len(m.Aggregates) }

// Validate checks that all endpoints exist in g and pairs are unique.
func (m *Matrix) Validate(g *graph.Graph) error {
	seen := make(map[[2]graph.NodeID]bool, len(m.Aggregates))
	for i, a := range m.Aggregates {
		if int(a.Src) >= g.NumNodes() || int(a.Dst) >= g.NumNodes() || a.Src < 0 || a.Dst < 0 {
			return fmt.Errorf("tm: aggregate %d references unknown node", i)
		}
		if a.Src == a.Dst {
			return fmt.Errorf("tm: aggregate %d is a self-loop", i)
		}
		key := [2]graph.NodeID{a.Src, a.Dst}
		if seen[key] {
			return fmt.Errorf("tm: duplicate aggregate %d -> %d", a.Src, a.Dst)
		}
		seen[key] = true
	}
	return nil
}
