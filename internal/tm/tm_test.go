package tm

import (
	"math"
	"testing"
	"testing/quick"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

func pairGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("g")
	a := b.AddNode("a", geo.Point{})
	c := b.AddNode("b", geo.Point{})
	b.AddBiLink(a, c, 1e9, 1)
	return b.MustBuild()
}

func TestNewSortsAndFilters(t *testing.T) {
	m := New([]Aggregate{
		{Src: 1, Dst: 0, Volume: 2e9},
		{Src: 0, Dst: 1, Volume: 1e9},
		{Src: 0, Dst: 1, Volume: 0}, // dropped: zero volume
	})
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if m.Aggregates[0].Src != 0 || m.Aggregates[1].Src != 1 {
		t.Fatalf("not sorted: %+v", m.Aggregates)
	}
	if m.Aggregates[0].Flows != 1 {
		t.Fatal("flows should default to 1")
	}
}

func TestScaleAndTotal(t *testing.T) {
	m := New([]Aggregate{
		{Src: 0, Dst: 1, Volume: 1e9, Flows: 5},
		{Src: 1, Dst: 0, Volume: 3e9, Flows: 2},
	})
	if got := m.TotalVolume(); math.Abs(got-4e9) > 1 {
		t.Fatalf("total = %v", got)
	}
	s := m.Scale(2.5)
	if got := s.TotalVolume(); math.Abs(got-10e9) > 1 {
		t.Fatalf("scaled total = %v", got)
	}
	// Original untouched; flows preserved.
	if m.TotalVolume() != 4e9 || s.Aggregates[0].Flows != 5 {
		t.Fatal("Scale must not mutate or drop metadata")
	}
}

func TestScaleLinearityProperty(t *testing.T) {
	f := func(rawVols []float64, factor float64) bool {
		if len(rawVols) == 0 {
			return true
		}
		factor = math.Mod(math.Abs(factor), 10) + 0.1
		var aggs []Aggregate
		for i, v := range rawVols {
			v = math.Mod(math.Abs(v), 1e9) + 1
			aggs = append(aggs, Aggregate{
				Src: graph.NodeID(i % 7), Dst: graph.NodeID(i%7 + 1), Volume: v,
			})
		}
		// Duplicate pairs are fine for this pure-volume property.
		m := &Matrix{Aggregates: aggs}
		want := m.TotalVolume() * factor
		got := m.Scale(factor).TotalVolume()
		return math.Abs(got-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	g := pairGraph(t)
	ok := New([]Aggregate{{Src: 0, Dst: 1, Volume: 1e9}})
	if err := ok.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := &Matrix{Aggregates: []Aggregate{{Src: 0, Dst: 9, Volume: 1}}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("unknown node should fail")
	}
	self := &Matrix{Aggregates: []Aggregate{{Src: 0, Dst: 0, Volume: 1}}}
	if err := self.Validate(g); err == nil {
		t.Fatal("self loop should fail")
	}
	dup := &Matrix{Aggregates: []Aggregate{
		{Src: 0, Dst: 1, Volume: 1}, {Src: 0, Dst: 1, Volume: 2},
	}}
	if err := dup.Validate(g); err == nil {
		t.Fatal("duplicate pair should fail")
	}
}

func TestEffectiveWeight(t *testing.T) {
	if (Aggregate{}).EffectiveWeight() != 1 {
		t.Fatal("default weight must be 1")
	}
	if (Aggregate{Weight: -3}).EffectiveWeight() != 1 {
		t.Fatal("negative weight must fall back to 1")
	}
	if (Aggregate{Weight: 4}).EffectiveWeight() != 4 {
		t.Fatal("explicit weight must pass through")
	}
}
