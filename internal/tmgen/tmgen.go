// Package tmgen synthesizes traffic matrices the way the paper does (§3):
// a Roughan-style gravity model with Zipf-distributed PoP masses, extended
// with a locality parameter ℓ that lets short-distance aggregates grow by
// up to ℓ times their original demand (solved as a marginal-preserving
// transportation LP), and scaled so that the MinMax-optimal peak link
// utilization hits a target (the paper's "min-cut load").
package tmgen

import (
	"fmt"
	"math"

	"lowlat/internal/graph"
	"lowlat/internal/lp"
	"lowlat/internal/routing"
	"lowlat/internal/stats"
	"lowlat/internal/tm"
)

// Config parameterizes traffic matrix generation. Zero values take the
// paper's defaults.
type Config struct {
	// Seed drives the Zipf mass assignment; different seeds give the
	// independent matrices of the paper's "100 traffic matrices".
	Seed int64
	// ZipfExponent shapes the PoP mass distribution (default 1.2).
	ZipfExponent float64
	// Locality is the paper's ℓ: short flows may grow by ℓ times their
	// gravity-model demand, funded by shrinking long flows, with per-PoP
	// ingress/egress totals preserved. Default 1. Explicit zero means
	// "pure gravity" (use NoLocality to request it).
	Locality float64
	// NoLocality forces ℓ = 0 (the locality-free gravity model).
	NoLocality bool
	// TargetMaxUtil is the MinMax-optimal peak utilization after
	// scaling. The paper's standard setting loads the min-cut to 1/1.3
	// ("possible to route without congestion if all traffic increases by
	// 30%"), i.e. 0.77. Default 0.77.
	TargetMaxUtil float64
	// FlowsPerGbps sets the aggregate flow counts n_a (default 1000,
	// i.e. one flow per Mbps), proportional to volume.
	FlowsPerGbps float64
}

func (c Config) withDefaults() Config {
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.2
	}
	if c.Locality == 0 && !c.NoLocality {
		c.Locality = 1
	}
	if c.TargetMaxUtil <= 0 {
		c.TargetMaxUtil = 1 / 1.3
	}
	if c.FlowsPerGbps <= 0 {
		c.FlowsPerGbps = 1000
	}
	return c
}

// Result carries a generated matrix plus the calibration details.
type Result struct {
	Matrix *tm.Matrix
	// ScaleFactor is the multiplier applied to the unit-total gravity
	// matrix to reach the target load.
	ScaleFactor float64
	// MinMaxUtil is the MinMax-optimal peak utilization of the final
	// matrix (should equal TargetMaxUtil up to solver tolerance).
	MinMaxUtil float64
}

// Generate produces one traffic matrix for g.
func Generate(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("tmgen: graph %q too small", g.Name())
	}
	rng := stats.Rng(cfg.Seed)
	masses := stats.ShuffledZipfWeights(n, cfg.ZipfExponent, rng)

	// Gravity model: volume(i,j) proportional to mass_i * mass_j.
	base := make([][]float64, n)
	total := 0.0
	for i := range base {
		base[i] = make([]float64, n)
		for j := range base[i] {
			if i == j {
				continue
			}
			base[i][j] = masses[i] * masses[j]
			total += base[i][j]
		}
	}
	for i := range base {
		for j := range base[i] {
			base[i][j] /= total // unit total volume before scaling
		}
	}

	// Locality redistribution (footnote 3's linear program): minimize
	// distance-weighted volume subject to preserved marginals and the
	// per-aggregate growth cap (1+ℓ) * base.
	shaped := base
	if cfg.Locality > 0 {
		var err error
		shaped, err = applyLocality(g, base, cfg.Locality)
		if err != nil {
			return nil, err
		}
	}

	// Assemble the unscaled matrix.
	var aggs []tm.Aggregate
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || shaped[i][j] <= 1e-12 {
				continue
			}
			aggs = append(aggs, tm.Aggregate{
				Src:    graph.NodeID(i),
				Dst:    graph.NodeID(j),
				Volume: shaped[i][j],
				Flows:  1, // placeholder until scaling
			})
		}
	}
	unit := tm.New(aggs)

	// Scale so the MinMax-optimal peak utilization equals the target.
	// The optimum is exactly linear in scale, but the iterative MinMax
	// solver's termination point is not perfectly scale-invariant, so we
	// calibrate to a fixed point of the solver actually used everywhere
	// else in the reproduction.
	scale := 1.0
	measured := 0.0
	for round := 0; round < 5; round++ {
		_, mmStats, err := (routing.MinMax{}).PlaceWithStats(g, unit.Scale(scale))
		if err != nil {
			return nil, err
		}
		if mmStats.MaxOverload <= 0 {
			return nil, fmt.Errorf("tmgen: degenerate matrix for %q", g.Name())
		}
		measured = mmStats.MaxOverload
		if math.Abs(measured-cfg.TargetMaxUtil) <= 0.01*cfg.TargetMaxUtil {
			break
		}
		scale *= cfg.TargetMaxUtil / measured
	}

	final := make([]tm.Aggregate, len(unit.Aggregates))
	copy(final, unit.Aggregates)
	for i := range final {
		final[i].Volume *= scale
		flows := int(math.Round(final[i].Volume / 1e9 * cfg.FlowsPerGbps))
		if flows < 1 {
			flows = 1
		}
		final[i].Flows = flows
	}
	return &Result{
		Matrix:      tm.New(final),
		ScaleFactor: scale,
		MinMaxUtil:  measured,
	}, nil
}

// GenerateSet produces count independent matrices (seeds Seed, Seed+1, ...).
func GenerateSet(g *graph.Graph, cfg Config, count int) ([]*tm.Matrix, error) {
	out := make([]*tm.Matrix, 0, count)
	for i := 0; i < count; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := Generate(g, c)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Matrix)
	}
	return out, nil
}

// applyLocality solves the transportation LP: minimize sum d_ij * t_ij
// subject to row sums, column sums, and 0 <= t_ij <= (1+ℓ) base_ij. With
// ℓ = 0 the unique feasible point is the base matrix itself.
func applyLocality(g *graph.Graph, base [][]float64, locality float64) ([][]float64, error) {
	n := len(base)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		dists, _ := g.ShortestPathTree(graph.NodeID(i), nil, nil)
		for j := range dist[i] {
			dist[i][j] = dists[j]
		}
	}

	prob := lp.NewProblem()
	vars := make([][]int, n)
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]int, n)
		for j := 0; j < n; j++ {
			vars[i][j] = -1
			if i == j || base[i][j] <= 0 {
				continue
			}
			// Short flows may grow to (1+ℓ)x their demand; long flows
			// shrink at most to 1/(1+ℓ)x, so long-distance links stay
			// loaded enough "to justify their presence" (§3).
			vars[i][j] = prob.AddVar(base[i][j]/(1+locality), (1+locality)*base[i][j], dist[i][j])
			rowSum[i] += base[i][j]
			colSum[j] += base[i][j]
		}
	}
	for i := 0; i < n; i++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			if vars[i][j] >= 0 {
				terms = append(terms, lp.Term{Var: vars[i][j], Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(lp.EQ, rowSum[i], terms...)
		}
	}
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if vars[i][j] >= 0 {
				terms = append(terms, lp.Term{Var: vars[i][j], Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(lp.EQ, colSum[j], terms...)
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("tmgen: locality LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("tmgen: locality LP status %v", sol.Status)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if vars[i][j] >= 0 {
				out[i][j] = sol.X[vars[i][j]]
			}
		}
	}
	return out, nil
}
