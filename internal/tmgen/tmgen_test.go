package tmgen

import (
	"math"
	"testing"

	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/topo"
)

func marginals(g *graph.Graph, aggs []float64, m [][]float64) ([]float64, []float64) {
	n := len(m)
	rows := make([]float64, n)
	cols := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rows[i] += m[i][j]
			cols[j] += m[i][j]
		}
	}
	return rows, cols
}

func matrixOf(g *graph.Graph, r *Result) [][]float64 {
	n := g.NumNodes()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, a := range r.Matrix.Aggregates {
		m[a.Src][a.Dst] = a.Volume
	}
	return m
}

func TestGenerateBasics(t *testing.T) {
	g := topo.Grid("g", 4, 4, 650, topo.Cap10G)
	res, err := Generate(g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 16*15 {
		t.Fatalf("aggregates = %d, want full mesh %d", m.Len(), 16*15)
	}
	for _, a := range m.Aggregates {
		if a.Volume <= 0 || a.Flows < 1 {
			t.Fatalf("bad aggregate %+v", a)
		}
	}
	// Flow counts are proportional to volume (1000 flows per Gbps).
	for _, a := range m.Aggregates {
		want := a.Volume / 1e9 * 1000
		if want >= 2 && math.Abs(float64(a.Flows)-want) > want*0.5+1 {
			t.Fatalf("flows %d not proportional to volume %v", a.Flows, a.Volume)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	g := topo.Ring("r", 10, 1200, topo.Cap10G)
	a, err := Generate(g, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matrix.Len() != b.Matrix.Len() {
		t.Fatal("same seed, different matrices")
	}
	for i := range a.Matrix.Aggregates {
		if a.Matrix.Aggregates[i] != b.Matrix.Aggregates[i] {
			t.Fatal("same seed, different aggregates")
		}
	}
	c, err := Generate(g, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Matrix.Aggregates {
		if a.Matrix.Aggregates[i].Volume != c.Matrix.Aggregates[i].Volume {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical volumes")
	}
}

func TestScalingHitsTargetUtilization(t *testing.T) {
	g := topo.Grid("g", 4, 4, 650, topo.Cap10G)
	for _, target := range []float64{0.6, 1 / 1.3, 0.9} {
		res, err := Generate(g, Config{Seed: 3, TargetMaxUtil: target})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := (routing.MinMax{}).PlaceWithStats(g, res.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(stats.MaxOverload-target) > 0.02 {
			t.Fatalf("target %v: MinMax peak = %v", target, stats.MaxOverload)
		}
	}
}

func TestPaperLoadSemantics(t *testing.T) {
	// The paper's calibration: "with optimal routing it is still (just)
	// possible to route the network without congestion if all traffic
	// increases by 30%". Scaling the default matrix by 1.3 must still
	// fit; by 1.4 must not.
	g := topo.Grid("g", 4, 4, 650, topo.Cap10G)
	res, err := Generate(g, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, up13, err := (routing.MinMax{}).PlaceWithStats(g, res.Matrix.Scale(1.3))
	if err != nil {
		t.Fatal(err)
	}
	if up13.MaxOverload > 1+0.02 {
		t.Fatalf("+30%% should just fit, peak = %v", up13.MaxOverload)
	}
	_, up14, err := (routing.MinMax{}).PlaceWithStats(g, res.Matrix.Scale(1.45))
	if err != nil {
		t.Fatal(err)
	}
	if up14.MaxOverload <= 1 {
		t.Fatalf("+45%% should overload, peak = %v", up14.MaxOverload)
	}
}

func TestLocalityPreservesMarginals(t *testing.T) {
	g := topo.Grid("g", 4, 4, 650, topo.Cap10G)
	noLoc, err := Generate(g, Config{Seed: 7, NoLocality: true, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := Generate(g, Config{Seed: 7, Locality: 1, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Compare per-PoP totals after normalizing total volume (scaling
	// differs between the two matrices).
	mn := matrixOf(g, noLoc)
	ml := matrixOf(g, loc)
	var sn, sl float64
	for i := range mn {
		for j := range mn {
			sn += mn[i][j]
			sl += ml[i][j]
		}
	}
	rn, cn := marginals(g, nil, mn)
	rl, cl := marginals(g, nil, ml)
	for i := range rn {
		if math.Abs(rn[i]/sn-rl[i]/sl) > 1e-6 {
			t.Fatalf("row marginal %d changed: %v vs %v", i, rn[i]/sn, rl[i]/sl)
		}
		if math.Abs(cn[i]/sn-cl[i]/sl) > 1e-6 {
			t.Fatalf("col marginal %d changed: %v vs %v", i, cn[i]/sn, cl[i]/sl)
		}
	}
}

func TestLocalityShortensTraffic(t *testing.T) {
	g := topo.Grid("g", 4, 4, 650, topo.Cap10G)
	weightedDist := func(r *Result) float64 {
		num, den := 0.0, 0.0
		for _, a := range r.Matrix.Aggregates {
			sp, _ := g.ShortestPath(a.Src, a.Dst, nil, nil)
			num += a.Volume * sp.Delay
			den += a.Volume
		}
		return num / den
	}
	noLoc, err := Generate(g, Config{Seed: 9, NoLocality: true, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loc1, err := Generate(g, Config{Seed: 9, Locality: 1, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loc2, err := Generate(g, Config{Seed: 9, Locality: 2, TargetMaxUtil: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d0, d1, d2 := weightedDist(noLoc), weightedDist(loc1), weightedDist(loc2)
	if !(d0 > d1 && d1 >= d2) {
		t.Fatalf("locality must shorten mean traffic distance: %v, %v, %v", d0, d1, d2)
	}
	// Locality caps growth at (1+ℓ)x the base demand per aggregate.
	base := matrixOf(g, noLoc)
	shaped := matrixOf(g, loc1)
	var sb, ss float64
	for i := range base {
		for j := range base {
			sb += base[i][j]
			ss += shaped[i][j]
		}
	}
	for i := range base {
		for j := range base {
			if base[i][j] == 0 {
				continue
			}
			if shaped[i][j]/ss > 2*base[i][j]/sb*(1+1e-6) {
				t.Fatalf("aggregate %d->%d grew beyond (1+l): %v vs base %v",
					i, j, shaped[i][j]/ss, base[i][j]/sb)
			}
		}
	}
}

func TestGenerateSet(t *testing.T) {
	g := topo.Ring("r", 8, 1200, topo.Cap10G)
	ms, err := GenerateSet(g, Config{Seed: 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d matrices", len(ms))
	}
	if ms[0].TotalVolume() == ms[1].TotalVolume() {
		t.Fatal("matrices in a set should differ")
	}
}

func TestGenerateTooSmall(t *testing.T) {
	b := graph.NewBuilder("one")
	b.AddNode("only", struct{ Lat, Lon float64 }{})
	if _, err := Generate(b.MustBuild(), Config{}); err == nil {
		t.Fatal("expected error for single-node graph")
	}
}
