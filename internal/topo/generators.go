// Package topo builds the reproduction's topology dataset: a deterministic
// synthetic zoo standing in for the 116 Internet Topology Zoo networks the
// paper studies, plus the named networks its narrative leans on (a GTS-like
// central-European grid, a Cogent-like intercontinental mesh, and a
// Google-like high-LLPD global network).
//
// Generators place nodes geographically and derive link delays from
// great-circle distances, so every synthetic network has physically
// plausible latency structure. All generators are deterministic: the same
// arguments always produce the same network.
package topo

import (
	"fmt"
	"math"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/stats"
)

// Capacity tiers used across the zoo, in bits per second.
const (
	Gbps    = 1e9
	Cap10G  = 10 * Gbps
	Cap40G  = 40 * Gbps
	Cap100G = 100 * Gbps
)

const (
	kmPerDegLat = 111.0
	defaultLat  = 45.0
	defaultLon  = 10.0
)

// place converts a (dx, dy) offset in kilometers from the default center to
// a geographic point. dx is east, dy is north.
func place(dxKm, dyKm float64) geo.Point {
	lat := defaultLat + dyKm/kmPerDegLat
	lon := defaultLon + dxKm/(kmPerDegLat*math.Cos(defaultLat*math.Pi/180))
	return geo.Point{Lat: lat, Lon: lon}
}

// Star returns a hub-and-spoke network: one hub, leaves on a circle. Its
// LLPD is zero: no link can be routed around at all.
func Star(name string, leaves int, radiusKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	hub := b.AddNode("hub", place(0, 0))
	for i := 0; i < leaves; i++ {
		ang := 2 * math.Pi * float64(i) / float64(leaves)
		n := b.AddNode(fmt.Sprintf("leaf%d", i), place(radiusKm*math.Cos(ang), radiusKm*math.Sin(ang)))
		b.AddGeoBiLink(hub, n, capacity)
	}
	return b.MustBuild()
}

// Tree returns a balanced tree with the given branching factor and depth
// (depth 0 is a single root). Trees have LLPD zero.
func Tree(name string, branching, depth int, spacingKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	type qn struct {
		id    graph.NodeID
		level int
		x     float64
	}
	root := b.AddNode("n0", place(0, 0))
	queue := []qn{{root, 0, 0}}
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.level >= depth {
			continue
		}
		span := spacingKm * math.Pow(float64(branching), float64(depth-cur.level-1))
		for c := 0; c < branching; c++ {
			x := cur.x + span*(float64(c)-float64(branching-1)/2)
			id := b.AddNode(fmt.Sprintf("n%d", count), place(x, -spacingKm*float64(cur.level+1)))
			count++
			b.AddGeoBiLink(cur.id, id, capacity)
			queue = append(queue, qn{id, cur.level + 1, x})
		}
	}
	return b.MustBuild()
}

// Ring returns n nodes on a circle of the given radius, each linked to its
// two neighbors. Rings have path diversity but a high latency cost for
// going the "wrong way" around — the paper's mid-LLPD class.
func Ring(name string, n int, radiusKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	ids := ringNodes(b, n, radiusKm)
	for i := 0; i < n; i++ {
		b.AddGeoBiLink(ids[i], ids[(i+1)%n], capacity)
	}
	return b.MustBuild()
}

func ringNodes(b *graph.Builder, n int, radiusKm float64) []graph.NodeID {
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		ids[i] = b.AddNode(fmt.Sprintf("r%d", i), place(radiusKm*math.Cos(ang), radiusKm*math.Sin(ang)))
	}
	return ids
}

// ChordedRing returns a ring with an extra chord every `every` nodes,
// raising LLPD above a plain ring.
func ChordedRing(name string, n, every int, radiusKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	ids := ringNodes(b, n, radiusKm)
	for i := 0; i < n; i++ {
		b.AddGeoBiLink(ids[i], ids[(i+1)%n], capacity)
	}
	for i := 0; i < n; i += every {
		j := (i + n/2) % n
		if i < j && !b.HasLink(ids[i], ids[j]) {
			b.AddGeoBiLink(ids[i], ids[j], capacity)
		}
	}
	return b.MustBuild()
}

// DoubleRing returns two concentric rings joined by spokes, a common
// survivable-WAN design.
func DoubleRing(name string, n int, outerKm float64, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	outer := make([]graph.NodeID, n)
	inner := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		outer[i] = b.AddNode(fmt.Sprintf("o%d", i), place(outerKm*math.Cos(ang), outerKm*math.Sin(ang)))
		inner[i] = b.AddNode(fmt.Sprintf("i%d", i), place(0.55*outerKm*math.Cos(ang), 0.55*outerKm*math.Sin(ang)))
	}
	for i := 0; i < n; i++ {
		b.AddGeoBiLink(outer[i], outer[(i+1)%n], capacity)
		b.AddGeoBiLink(inner[i], inner[(i+1)%n], capacity)
		b.AddGeoBiLink(outer[i], inner[i], capacity)
	}
	return b.MustBuild()
}

// Ladder returns a 2 x rungs ladder (two parallel chains with rungs).
func Ladder(name string, rungs int, spacingKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	top := make([]graph.NodeID, rungs)
	bot := make([]graph.NodeID, rungs)
	for i := 0; i < rungs; i++ {
		x := spacingKm * float64(i)
		top[i] = b.AddNode(fmt.Sprintf("t%d", i), place(x, spacingKm/2))
		bot[i] = b.AddNode(fmt.Sprintf("b%d", i), place(x, -spacingKm/2))
		b.AddGeoBiLink(top[i], bot[i], capacity)
		if i > 0 {
			b.AddGeoBiLink(top[i-1], top[i], capacity)
			b.AddGeoBiLink(bot[i-1], bot[i], capacity)
		}
	}
	return b.MustBuild()
}

// Grid returns a w x h two-dimensional grid with the given node spacing —
// the paper's canonical high-LLPD class (GTS-like).
func Grid(name string, w, h int, spacingKm, capacity float64) *graph.Graph {
	g, _ := gridBuilder(name, w, h, spacingKm, capacity, false)
	return g
}

// GridDiag returns a grid with diagonal links added in every cell, an even
// denser mesh.
func GridDiag(name string, w, h int, spacingKm, capacity float64) *graph.Graph {
	g, _ := gridBuilder(name, w, h, spacingKm, capacity, true)
	return g
}

func gridBuilder(name string, w, h int, spacingKm, capacity float64, diag bool) (*graph.Graph, []graph.NodeID) {
	b := graph.NewBuilder(name)
	ids := make([]graph.NodeID, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ids[y*w+x] = b.AddNode(fmt.Sprintf("g%d_%d", x, y),
				place(spacingKm*float64(x), spacingKm*float64(y)))
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddGeoBiLink(ids[y*w+x], ids[y*w+x+1], capacity)
			}
			if y+1 < h {
				b.AddGeoBiLink(ids[y*w+x], ids[(y+1)*w+x], capacity)
			}
			if diag && x+1 < w && y+1 < h {
				b.AddGeoBiLink(ids[y*w+x], ids[(y+1)*w+x+1], capacity)
			}
		}
	}
	return b.MustBuild(), ids
}

// Clique returns a full mesh — the paper identifies these as overlay
// networks whose APA CDFs are horizontal lines.
func Clique(name string, n int, radiusKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	ids := ringNodes(b, n, radiusKm)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddGeoBiLink(ids[i], ids[j], capacity)
		}
	}
	return b.MustBuild()
}

// RandomGeo returns a Waxman-style random geographic mesh over a widthKm x
// heightKm box: a random spanning tree guarantees connectivity, then extra
// links are added with probability alpha * exp(-d / (beta * maxDist)).
func RandomGeo(name string, n int, widthKm, heightKm, alpha, beta, capacity float64, seed int64) *graph.Graph {
	rng := stats.Rng(seed)
	b := graph.NewBuilder(name)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * widthKm
		ys[i] = rng.Float64() * heightKm
		ids[i] = b.AddNode(fmt.Sprintf("w%d", i), place(xs[i], ys[i]))
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	// Spanning tree: connect each node to its nearest already-placed node.
	for i := 1; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for j := 0; j < i; j++ {
			if d := dist(i, j); d < bestD {
				best, bestD = j, d
			}
		}
		b.AddGeoBiLink(ids[i], ids[best], capacity)
	}
	maxDist := math.Hypot(widthKm, heightKm)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if b.HasLink(ids[i], ids[j]) {
				continue
			}
			p := alpha * math.Exp(-dist(i, j)/(beta*maxDist))
			if rng.Float64() < p {
				b.AddGeoBiLink(ids[i], ids[j], capacity)
			}
		}
	}
	return b.MustBuild()
}

// MultiRegion returns `regions` regional meshes spread along an east-west
// span, joined by `interLinks` long-haul links per adjacent region pair —
// the paper's Cogent-like intercontinental class. Long-haul links get the
// long-haul capacity tier; regional links the regional tier.
func MultiRegion(name string, regions, perRegion int, regionSpanKm, interDistKm float64,
	interLinks int, regionalCap, longHaulCap float64, seed int64) *graph.Graph {
	rng := stats.Rng(seed)
	b := graph.NewBuilder(name)
	regionNodes := make([][]graph.NodeID, regions)
	regionX := make([][]float64, regions)
	regionY := make([][]float64, regions)
	for r := 0; r < regions; r++ {
		baseX := float64(r) * (regionSpanKm + interDistKm)
		nodes := make([]graph.NodeID, perRegion)
		xs := make([]float64, perRegion)
		ys := make([]float64, perRegion)
		for i := 0; i < perRegion; i++ {
			xs[i] = baseX + rng.Float64()*regionSpanKm
			ys[i] = rng.Float64() * regionSpanKm
			nodes[i] = b.AddNode(fmt.Sprintf("r%dn%d", r, i), place(xs[i], ys[i]))
		}
		// Dense regional mesh: nearest-neighbor tree plus extra links.
		for i := 1; i < perRegion; i++ {
			best, bestD := 0, math.Inf(1)
			for j := 0; j < i; j++ {
				if d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j]); d < bestD {
					best, bestD = j, d
				}
			}
			b.AddGeoBiLink(nodes[i], nodes[best], regionalCap)
		}
		extra := perRegion
		for e := 0; e < extra; e++ {
			i, j := rng.Intn(perRegion), rng.Intn(perRegion)
			if i != j && !b.HasLink(nodes[i], nodes[j]) {
				b.AddGeoBiLink(nodes[i], nodes[j], regionalCap)
			}
		}
		regionNodes[r] = nodes
		regionX[r] = xs
		regionY[r] = ys
	}
	for r := 0; r+1 < regions; r++ {
		for k := 0; k < interLinks; k++ {
			i := rng.Intn(perRegion)
			j := rng.Intn(perRegion)
			if !b.HasLink(regionNodes[r][i], regionNodes[r+1][j]) {
				b.AddGeoBiLink(regionNodes[r][i], regionNodes[r+1][j], longHaulCap)
			}
		}
	}
	return b.MustBuild()
}

// Wheel returns a star whose leaves are also joined in a ring, giving
// hub-and-spoke networks limited redundancy.
func Wheel(name string, leaves int, radiusKm, capacity float64) *graph.Graph {
	b := graph.NewBuilder(name)
	hub := b.AddNode("hub", place(0, 0))
	ids := make([]graph.NodeID, leaves)
	for i := 0; i < leaves; i++ {
		ang := 2 * math.Pi * float64(i) / float64(leaves)
		ids[i] = b.AddNode(fmt.Sprintf("leaf%d", i), place(radiusKm*math.Cos(ang), radiusKm*math.Sin(ang)))
		b.AddGeoBiLink(hub, ids[i], capacity)
	}
	for i := 0; i < leaves; i++ {
		b.AddGeoBiLink(ids[i], ids[(i+1)%leaves], capacity)
	}
	return b.MustBuild()
}
