package topo

import "testing"

// The sweep grid's generator terms (randomgeo:, multiregion:) lean on the
// seeded generators being exactly reproducible: the same seed must
// rebuild the same graph (equal fingerprints), and different seeds must
// diverge, or the store's content-addressed keys would alias distinct
// topologies.

func TestRandomGeoSeedDeterminism(t *testing.T) {
	build := func(seed int64) uint64 {
		return RandomGeo("rg", 24, 3200, 2300, 0.4, 0.3, Cap10G, seed).Fingerprint()
	}
	if a, b := build(7), build(7); a != b {
		t.Fatalf("same seed diverged: %016x vs %016x", a, b)
	}
	if a, b := build(7), build(8); a == b {
		t.Fatalf("different seeds collided on %016x", a)
	}
	// The fingerprint covers the name too; same structure under another
	// name is a different store identity by design.
	other := RandomGeo("rg2", 24, 3200, 2300, 0.4, 0.3, Cap10G, 7).Fingerprint()
	if other == build(7) {
		t.Fatal("renamed graph kept the same fingerprint")
	}
}

func TestMultiRegionSeedDeterminism(t *testing.T) {
	build := func(seed int64) uint64 {
		return MultiRegion("mr", 2, 8, 1600, 5200, 3, Cap40G, Cap100G, seed).Fingerprint()
	}
	if a, b := build(5), build(5); a != b {
		t.Fatalf("same seed diverged: %016x vs %016x", a, b)
	}
	if a, b := build(5), build(6); a == b {
		t.Fatalf("different seeds collided on %016x", a)
	}
}

// TestZooMeshRebuildStable pins the zoo's own seeded families: building a
// zoo entry twice gives identical graphs, which LoadZoo and every
// content-addressed store key depend on.
func TestZooMeshRebuildStable(t *testing.T) {
	for _, name := range []string{"mesh-12-sparse", "mesh-12-dense", "intercont-2x8-2"} {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("zoo entry %s missing", name)
		}
		if a, b := e.Build().Fingerprint(), e.Build().Fingerprint(); a != b {
			t.Fatalf("%s rebuild diverged: %016x vs %016x", name, a, b)
		}
	}
}
