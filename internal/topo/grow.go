package topo

import (
	"math"
	"sort"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/metrics"
	"lowlat/internal/stats"
)

// GrowConfig parameterizes LLPD-guided topology growth (§8, Figure 20).
type GrowConfig struct {
	// Fraction of additional (bidirectional) links to add relative to the
	// current link count. Paper default: 0.05.
	Fraction float64
	// CandidateSample bounds how many absent node pairs are scored per
	// added link (0 = all). Scoring a candidate requires a full LLPD
	// computation, so sampling keeps growth tractable on larger networks.
	CandidateSample int
	// Seed drives candidate sampling.
	Seed int64
	// APA holds the metric configuration used for scoring.
	APA metrics.APAConfig
}

func (c GrowConfig) withDefaults() GrowConfig {
	if c.Fraction <= 0 {
		c.Fraction = 0.05
	}
	if c.CandidateSample == 0 {
		c.CandidateSample = 24
	}
	return c
}

// AddedLink records one link added by Grow.
type AddedLink struct {
	From, To graph.NodeID
	LLPD     float64 // LLPD after adding this link
}

// Grow evolves a topology the way the paper does for Figure 20: among
// candidate absent links, repeatedly add the one yielding the greatest
// LLPD increase, until the number of bidirectional links has grown by
// cfg.Fraction. New links get great-circle delays and the network's median
// link capacity. Returns the grown graph and the additions in order.
func Grow(g *graph.Graph, cfg GrowConfig) (*graph.Graph, []AddedLink) {
	cfg = cfg.withDefaults()
	toAdd := int(math.Ceil(cfg.Fraction * float64(g.NumLinks()) / 2))
	if toAdd < 1 {
		toAdd = 1
	}
	capacity := MedianLinkCapacity(g)
	rng := stats.Rng(cfg.Seed)

	cur := g
	var added []AddedLink
	for round := 0; round < toAdd; round++ {
		type cand struct{ a, b graph.NodeID }
		var candidates []cand
		for a := 0; a < cur.NumNodes(); a++ {
			for b := a + 1; b < cur.NumNodes(); b++ {
				if _, exists := cur.FindLink(graph.NodeID(a), graph.NodeID(b)); !exists {
					candidates = append(candidates, cand{graph.NodeID(a), graph.NodeID(b)})
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Prefer geographically short candidates: they are the plausible
		// low-latency additions, and bias the sample toward them before
		// scoring. Sort by distance, keep a window, then sample.
		sort.Slice(candidates, func(i, j int) bool {
			di := geo.DistanceKm(cur.Node(candidates[i].a).Loc, cur.Node(candidates[i].b).Loc)
			dj := geo.DistanceKm(cur.Node(candidates[j].a).Loc, cur.Node(candidates[j].b).Loc)
			return di < dj
		})
		if cfg.CandidateSample > 0 && len(candidates) > cfg.CandidateSample {
			window := cfg.CandidateSample * 3
			if window > len(candidates) {
				window = len(candidates)
			}
			candidates = candidates[:window]
			rng.Shuffle(len(candidates), func(i, j int) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			})
			candidates = candidates[:cfg.CandidateSample]
		}

		bestLLPD := -1.0
		var bestGraph *graph.Graph
		var bestAdd AddedLink
		for _, c := range candidates {
			b := graph.Clone(cur)
			b.AddGeoBiLink(c.a, c.b, capacity)
			trial := b.MustBuild()
			llpd := metrics.LLPD(trial, cfg.APA)
			if llpd > bestLLPD {
				bestLLPD = llpd
				bestGraph = trial
				bestAdd = AddedLink{From: c.a, To: c.b, LLPD: llpd}
			}
		}
		cur = bestGraph
		added = append(added, bestAdd)
	}
	return cur, added
}

// MedianLinkCapacity returns the median capacity across g's links.
func MedianLinkCapacity(g *graph.Graph) float64 {
	caps := make([]float64, 0, g.NumLinks())
	for _, l := range g.Links() {
		caps = append(caps, l.Capacity)
	}
	return stats.Median(caps)
}
