package topo

import (
	"fmt"
	"testing"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/metrics"
)

func TestLLPDIsNotMonotoneUnderLinkAddition(t *testing.T) {
	// The paper's §8 caveat: adding a link can *reduce* LLPD (a new
	// shortest path with no low-latency alternate drags pairs below the
	// APA threshold). Exhibit both directions on concrete topologies.

	// Direction 1: adding a chord to a ring raises LLPD.
	ring := Ring("r8", 8, 800, Cap10G)
	before := metrics.LLPD(ring, metrics.APAConfig{})
	grown, added := Grow(ring, GrowConfig{Fraction: 0.10})
	if len(added) == 0 {
		t.Fatal("growth must add a link")
	}
	if after := metrics.LLPD(grown, metrics.APAConfig{}); after <= before {
		t.Fatalf("LLPD-guided growth must raise LLPD: %v -> %v", before, after)
	}

	// Direction 2: the paper's §8 example, literally: "an Asia-centered
	// network ... Europe in the West and the US in the East. Adding a
	// single non-redundant transatlantic link would reduce latency for
	// some Europe<->US traffic, but may actually reduce LLPD, as there
	// is no low-latency alternate path available." Three polar-ish
	// regional grids in a line with redundant E-A and A-U crossings; the
	// new direct E-U polar link is the fastest E<->U route but its only
	// alternate (back through Asia) is ~2x the delay — every E<->U
	// pair's APA collapses and nobody else gains an alternate.
	build := func(withShortcut bool) *graph.Graph {
		b := graph.NewBuilder("eu-asia-us")
		mesh := func(prefix string, lonBase float64) []graph.NodeID {
			var ids []graph.NodeID
			for r := 0; r < 3; r++ { // lat 70..78
				for c := 0; c < 3; c++ {
					ids = append(ids, b.AddNode(fmt.Sprintf("%s%d%d", prefix, r, c), geo.Point{
						Lat: 70 + float64(r)*4,
						Lon: lonBase + float64(c)*5,
					}))
				}
			}
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					i := r*3 + c
					if c+1 < 3 {
						b.AddGeoBiLink(ids[i], ids[i+1], Cap10G)
					}
					if r+1 < 3 {
						b.AddGeoBiLink(ids[i], ids[i+3], Cap10G)
					}
					if r+1 < 3 && c+1 < 3 {
						b.AddGeoBiLink(ids[i], ids[i+4], Cap10G)
					}
				}
			}
			return ids
		}
		eu := mesh("e", 0)
		as := mesh("a", 90)
		us := mesh("u", 180)
		// Redundant crossings: two E-A links, two A-U links.
		b.AddGeoBiLink(eu[1*3+2], as[1*3+0], Cap40G)
		b.AddGeoBiLink(eu[2*3+2], as[2*3+0], Cap40G)
		b.AddGeoBiLink(as[1*3+2], us[1*3+0], Cap40G)
		b.AddGeoBiLink(as[2*3+2], us[2*3+0], Cap40G)
		if withShortcut {
			// One direct E<->U link over the pole: non-redundant.
			b.AddGeoBiLink(eu[2*3+1], us[2*3+1], Cap40G)
		}
		return b.MustBuild()
	}

	base := metrics.LLPD(build(false), metrics.APAConfig{})
	cut := metrics.LLPD(build(true), metrics.APAConfig{})
	if cut >= base {
		t.Fatalf("a non-redundant shortcut should reduce LLPD here: %v -> %v", base, cut)
	}
}
