package topo

import (
	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// city is a named location used by the hand-built networks.
type city struct {
	name     string
	lat, lon float64
}

func buildCities(name string, cities []city, edges [][2]string, capacity, slack float64) *graph.Graph {
	b := graph.NewBuilder(name)
	for _, c := range cities {
		b.AddNode(c.name, geo.Point{Lat: c.lat, Lon: c.lon})
	}
	for _, e := range edges {
		a, ok := b.NodeID(e[0])
		if !ok {
			panic("topo: unknown city " + e[0])
		}
		z, ok := b.NodeID(e[1])
		if !ok {
			panic("topo: unknown city " + e[1])
		}
		delay := geo.PropagationDelay(geo.Point{Lat: cities[a].lat, Lon: cities[a].lon},
			geo.Point{Lat: cities[z].lat, Lon: cities[z].lon}, slack)
		b.AddBiLink(a, z, capacity, delay)
	}
	return b.MustBuild()
}

// GTSLike returns a central-European grid-like network in the image of
// GTS's backbone (paper Figure 2): ~30 PoPs at real city locations with
// mesh connectivity. Veszprem and Gyor are present with exactly the
// connectivity the paper's Figure 5 pathology example relies on (Veszprem
// reaches the rest of the network only via Gyor and Budapest).
func GTSLike() *graph.Graph {
	cities := []city{
		{"Prague", 50.08, 14.44}, {"Brno", 49.19, 16.61}, {"Ostrava", 49.82, 18.26},
		{"Bratislava", 48.15, 17.11}, {"Vienna", 48.21, 16.37}, {"Budapest", 47.50, 19.04},
		{"Gyor", 47.68, 17.63}, {"Veszprem", 47.09, 17.91}, {"Szeged", 46.25, 20.15},
		{"Debrecen", 47.53, 21.62}, {"Krakow", 50.06, 19.94}, {"Katowice", 50.26, 19.02},
		{"Wroclaw", 51.11, 17.03}, {"Warsaw", 52.23, 21.01}, {"Lodz", 51.76, 19.46},
		{"Poznan", 52.41, 16.93}, {"Berlin", 52.52, 13.40}, {"Dresden", 51.05, 13.74},
		{"Leipzig", 51.34, 12.37}, {"Munich", 48.14, 11.58}, {"Nuremberg", 49.45, 11.08},
		{"Salzburg", 47.81, 13.04}, {"Linz", 48.31, 14.29}, {"Graz", 47.07, 15.44},
		{"Zagreb", 45.81, 15.98}, {"Ljubljana", 46.06, 14.51}, {"Kosice", 48.72, 21.26},
		{"Zilina", 49.22, 18.74}, {"Szczecin", 53.43, 14.55}, {"Gdansk", 54.35, 18.65},
	}
	edges := [][2]string{
		{"Berlin", "Szczecin"}, {"Berlin", "Poznan"}, {"Berlin", "Dresden"}, {"Berlin", "Leipzig"},
		{"Szczecin", "Gdansk"}, {"Szczecin", "Poznan"}, {"Gdansk", "Warsaw"},
		{"Poznan", "Lodz"}, {"Poznan", "Wroclaw"}, {"Warsaw", "Lodz"}, {"Warsaw", "Krakow"},
		{"Lodz", "Katowice"}, {"Wroclaw", "Katowice"}, {"Wroclaw", "Dresden"},
		{"Katowice", "Krakow"}, {"Krakow", "Kosice"}, {"Ostrava", "Katowice"},
		{"Ostrava", "Zilina"}, {"Ostrava", "Brno"}, {"Zilina", "Kosice"}, {"Zilina", "Krakow"},
		{"Kosice", "Debrecen"}, {"Debrecen", "Budapest"}, {"Budapest", "Szeged"},
		{"Szeged", "Debrecen"}, {"Szeged", "Zagreb"}, {"Budapest", "Bratislava"},
		{"Budapest", "Gyor"}, {"Gyor", "Bratislava"}, {"Gyor", "Vienna"},
		{"Bratislava", "Vienna"}, {"Vienna", "Brno"}, {"Brno", "Prague"},
		{"Prague", "Dresden"}, {"Prague", "Nuremberg"}, {"Leipzig", "Dresden"},
		{"Leipzig", "Nuremberg"}, {"Nuremberg", "Munich"}, {"Munich", "Salzburg"},
		{"Salzburg", "Linz"}, {"Linz", "Vienna"}, {"Linz", "Munich"}, {"Graz", "Vienna"},
		{"Graz", "Ljubljana"}, {"Ljubljana", "Zagreb"}, {"Zagreb", "Budapest"},
		{"Ljubljana", "Salzburg"}, {"Zagreb", "Graz"}, {"Veszprem", "Gyor"},
		{"Veszprem", "Budapest"}, {"Prague", "Ostrava"}, {"Warsaw", "Poznan"},
	}
	return buildCities("gts-like", cities, edges, Cap10G, 2.2)
}

// CogentLike returns a two-continent network in the image of Cogent: a
// North-American mesh and a European mesh joined by a few transatlantic
// links. Long-haul links get 100G, regional links 40G; the long baseline
// between continents plus good in-region connectivity is what gives this
// class high LLPD.
func CogentLike() *graph.Graph {
	cities := []city{
		// North America.
		{"NewYork", 40.71, -74.01}, {"Boston", 42.36, -71.06}, {"Washington", 38.91, -77.04},
		{"Chicago", 41.88, -87.63}, {"Atlanta", 33.75, -84.39}, {"Miami", 25.76, -80.19},
		{"Dallas", 32.78, -96.80}, {"Denver", 39.74, -104.99}, {"LosAngeles", 34.05, -118.24},
		{"SanFrancisco", 37.77, -122.42}, {"Seattle", 47.61, -122.33}, {"Toronto", 43.65, -79.38},
		// Europe.
		{"London", 51.51, -0.13}, {"Paris", 48.86, 2.35}, {"Amsterdam", 52.37, 4.90},
		{"Frankfurt", 50.11, 8.68}, {"Madrid", 40.42, -3.70}, {"Milan", 45.46, 9.19},
		{"Zurich", 47.37, 8.54}, {"Brussels", 50.85, 4.35}, {"Hamburg", 53.55, 9.99},
		{"Stockholm", 59.33, 18.07},
	}
	regional := [][2]string{
		{"NewYork", "Boston"}, {"NewYork", "Washington"}, {"NewYork", "Chicago"},
		{"NewYork", "Toronto"}, {"NewYork", "Atlanta"}, {"Toronto", "Chicago"},
		{"Washington", "Atlanta"}, {"Washington", "Chicago"}, {"Atlanta", "Miami"},
		{"Atlanta", "Dallas"}, {"Miami", "Dallas"}, {"Dallas", "LosAngeles"},
		{"Dallas", "Denver"}, {"Denver", "Chicago"}, {"Denver", "SanFrancisco"},
		{"Denver", "Seattle"}, {"LosAngeles", "SanFrancisco"}, {"SanFrancisco", "Seattle"},
		{"LosAngeles", "Denver"}, {"Boston", "Toronto"},
		{"London", "Paris"}, {"London", "Amsterdam"}, {"London", "Brussels"},
		{"Paris", "Brussels"}, {"Paris", "Frankfurt"}, {"Paris", "Madrid"},
		{"Paris", "Milan"}, {"Brussels", "Amsterdam"}, {"Amsterdam", "Frankfurt"},
		{"Amsterdam", "Hamburg"}, {"Frankfurt", "Hamburg"}, {"Frankfurt", "Zurich"},
		{"Zurich", "Milan"}, {"Milan", "Madrid"}, {"Hamburg", "Stockholm"},
		{"Frankfurt", "Milan"}, {"London", "Madrid"},
	}
	transatlantic := [][2]string{
		{"NewYork", "London"}, {"Boston", "Amsterdam"}, {"Washington", "Paris"},
		{"Toronto", "London"},
	}
	b := graph.NewBuilder("cogent-like")
	for _, c := range cities {
		b.AddNode(c.name, geo.Point{Lat: c.lat, Lon: c.lon})
	}
	add := func(edges [][2]string, capacity float64) {
		for _, e := range edges {
			a, _ := b.NodeID(e[0])
			z, _ := b.NodeID(e[1])
			b.AddGeoBiLink(a, z, capacity)
		}
	}
	add(regional, Cap40G)
	add(transatlantic, Cap100G)
	return b.MustBuild()
}

// GoogleLike returns a global-scale, very dense network in the image of
// Google's B4/SNet (paper Figure 19, LLPD = 0.875): every region is a
// near-clique and every adjacent region pair is joined by several disjoint
// long-haul links, so almost any link can be routed around cheaply
// relative to the long global baselines.
func GoogleLike() *graph.Graph {
	cities := []city{
		// North America.
		{"Oregon", 45.60, -121.18}, {"Iowa", 41.26, -95.86}, {"SouthCarolina", 33.07, -80.04},
		{"Virginia", 39.04, -77.49}, {"Texas", 32.78, -96.80}, {"California", 34.05, -118.24},
		// Europe.
		{"Dublin", 53.35, -6.26}, {"London2", 51.51, -0.13}, {"Belgium", 50.47, 3.87},
		{"Frankfurt2", 50.11, 8.68}, {"Finland", 60.57, 27.19},
		// Asia.
		{"Tokyo", 35.68, 139.69}, {"Osaka", 34.69, 135.50}, {"Taiwan", 24.05, 120.52},
		{"Singapore", 1.35, 103.82}, {"HongKong", 22.32, 114.17}, {"Mumbai", 19.08, 72.88},
		// Oceania / South America.
		{"Sydney", -33.87, 151.21}, {"SaoPaulo", -23.55, -46.63}, {"Chile", -33.45, -70.67},
	}
	edges := [][2]string{
		// NA near-clique.
		{"Oregon", "Iowa"}, {"Oregon", "California"}, {"Oregon", "Texas"},
		{"Iowa", "Virginia"}, {"Iowa", "Texas"}, {"Iowa", "SouthCarolina"},
		{"Iowa", "California"}, {"Virginia", "SouthCarolina"}, {"Virginia", "Texas"},
		{"SouthCarolina", "Texas"}, {"Texas", "California"}, {"California", "Iowa"},
		{"Oregon", "Virginia"},
		// EU near-clique.
		{"Dublin", "London2"}, {"Dublin", "Belgium"}, {"London2", "Belgium"},
		{"London2", "Frankfurt2"}, {"Belgium", "Frankfurt2"}, {"Frankfurt2", "Finland"},
		{"Belgium", "Finland"}, {"Dublin", "Frankfurt2"}, {"London2", "Finland"},
		// Asia mesh.
		{"Tokyo", "Osaka"}, {"Tokyo", "Taiwan"}, {"Osaka", "Taiwan"},
		{"Taiwan", "HongKong"}, {"HongKong", "Singapore"}, {"Singapore", "Mumbai"},
		{"Taiwan", "Singapore"}, {"Tokyo", "HongKong"}, {"Osaka", "HongKong"},
		{"Mumbai", "HongKong"},
		// Transatlantic x4.
		{"Virginia", "Dublin"}, {"Virginia", "London2"}, {"SouthCarolina", "Belgium"},
		{"Iowa", "Frankfurt2"},
		// Transpacific x4.
		{"Oregon", "Tokyo"}, {"Oregon", "Osaka"}, {"California", "Tokyo"},
		{"California", "Taiwan"},
		// EU-Asia x2.
		{"Finland", "Mumbai"}, {"Frankfurt2", "Mumbai"},
		// Oceania x3.
		{"Sydney", "Singapore"}, {"Sydney", "California"}, {"Sydney", "Taiwan"},
		// South America x3.
		{"SaoPaulo", "Virginia"}, {"SaoPaulo", "SouthCarolina"}, {"Chile", "SaoPaulo"},
		{"Chile", "California"},
	}
	return buildCities("google-like", cities, edges, Cap100G, 1.0)
}
