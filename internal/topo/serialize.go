package topo

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// Marshal renders a topology in the repository's plain-text format:
//
//	topology <name>
//	node <name> <lat> <lon>
//	link <from> <to> <capacity-bps> <delay-sec>
//
// Links are directed; one line per direction.
func Marshal(g *graph.Graph) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "topology %s\n", g.Name())
	for _, n := range g.Nodes() {
		fmt.Fprintf(&buf, "node %s %.6f %.6f\n", n.Name, n.Loc.Lat, n.Loc.Lon)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&buf, "link %s %s %g %.9g\n",
			g.Node(l.From).Name, g.Node(l.To).Name, l.Capacity, l.Delay)
	}
	return buf.Bytes()
}

// Unmarshal parses the text format produced by Marshal.
func Unmarshal(data []byte) (*graph.Graph, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	var b *graph.Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: topology needs a name", lineNo)
			}
			if b != nil {
				return nil, fmt.Errorf("topo: line %d: duplicate topology header", lineNo)
			}
			b = graph.NewBuilder(fields[1])
		case "node":
			if b == nil {
				return nil, fmt.Errorf("topo: line %d: node before topology header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: node needs name lat lon", lineNo)
			}
			lat, err1 := strconv.ParseFloat(fields[2], 64)
			lon, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topo: line %d: bad coordinates", lineNo)
			}
			b.AddNode(fields[1], geo.Point{Lat: lat, Lon: lon})
		case "link":
			if b == nil {
				return nil, fmt.Errorf("topo: line %d: link before topology header", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("topo: line %d: link needs from to capacity delay", lineNo)
			}
			from, ok1 := b.NodeID(fields[1])
			to, ok2 := b.NodeID(fields[2])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("topo: line %d: link references unknown node", lineNo)
			}
			capacity, err1 := strconv.ParseFloat(fields[3], 64)
			delay, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topo: line %d: bad capacity/delay", lineNo)
			}
			b.AddLink(from, to, capacity, delay)
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("topo: empty input")
	}
	return b.Build()
}
