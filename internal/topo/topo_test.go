package topo

import (
	"testing"

	"lowlat/internal/graph"
)

func TestZooSizeAndDeterminism(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != ZooSize {
		t.Fatalf("zoo has %d entries, want %d", len(zoo), ZooSize)
	}
	names := map[string]bool{}
	for _, e := range zoo {
		if names[e.Name] {
			t.Fatalf("duplicate zoo name %q", e.Name)
		}
		names[e.Name] = true
	}
	// Building the same entry twice must yield identical topologies.
	e, _ := ByName("mesh-24-dense")
	g1, g2 := e.Build(), e.Build()
	if g1.NumNodes() != g2.NumNodes() || g1.NumLinks() != g2.NumLinks() {
		t.Fatal("zoo builds are not deterministic")
	}
	for i := 0; i < g1.NumLinks(); i++ {
		l1, l2 := g1.Link(graph.LinkID(i)), g2.Link(graph.LinkID(i))
		if l1 != l2 {
			t.Fatalf("link %d differs between builds: %v vs %v", i, l1, l2)
		}
	}
}

func TestZooAllConnected(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all 116 networks")
	}
	for _, e := range Zoo() {
		g := e.Build()
		if !g.Connected() {
			t.Errorf("%s is not connected", e.Name)
		}
		if g.NumNodes() < 4 {
			t.Errorf("%s has only %d nodes", e.Name, g.NumNodes())
		}
		for _, l := range g.Links() {
			if l.Delay <= 0 {
				t.Errorf("%s link %d has non-positive delay", e.Name, l.ID)
				break
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gts-like"); !ok {
		t.Fatal("gts-like missing from zoo")
	}
	if _, ok := ByName("google-like"); !ok {
		t.Fatal("google-like must be resolvable even though outside the zoo")
	}
	if _, ok := ByName("no-such-network"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestGeneratorShapes(t *testing.T) {
	star := Star("s", 8, 500, Cap10G)
	if star.NumNodes() != 9 || star.NumLinks() != 16 {
		t.Fatalf("star: %d nodes %d links", star.NumNodes(), star.NumLinks())
	}
	tree := Tree("t", 2, 3, 300, Cap10G)
	if tree.NumNodes() != 15 || tree.NumLinks() != 28 {
		t.Fatalf("tree: %d nodes %d links", tree.NumNodes(), tree.NumLinks())
	}
	ring := Ring("r", 10, 800, Cap10G)
	if ring.NumNodes() != 10 || ring.NumLinks() != 20 {
		t.Fatalf("ring: %d nodes %d links", ring.NumNodes(), ring.NumLinks())
	}
	grid := Grid("g", 4, 5, 400, Cap10G)
	if grid.NumNodes() != 20 || grid.NumLinks() != 2*(4*4+3*5) {
		t.Fatalf("grid: %d nodes %d links", grid.NumNodes(), grid.NumLinks())
	}
	clique := Clique("c", 6, 700, Cap10G)
	if clique.NumNodes() != 6 || clique.NumLinks() != 30 {
		t.Fatalf("clique: %d nodes %d links", clique.NumNodes(), clique.NumLinks())
	}
	ladder := Ladder("l", 5, 300, Cap10G)
	if ladder.NumNodes() != 10 || ladder.NumLinks() != 2*(5+2*4) {
		t.Fatalf("ladder: %d nodes %d links", ladder.NumNodes(), ladder.NumLinks())
	}
	wheel := Wheel("w", 6, 500, Cap10G)
	if wheel.NumNodes() != 7 || wheel.NumLinks() != 24 {
		t.Fatalf("wheel: %d nodes %d links", wheel.NumNodes(), wheel.NumLinks())
	}
	dr := DoubleRing("d", 6, 900, Cap10G)
	if dr.NumNodes() != 12 || dr.NumLinks() != 36 {
		t.Fatalf("double ring: %d nodes %d links", dr.NumNodes(), dr.NumLinks())
	}
	if !star.Connected() || !tree.Connected() || !grid.Connected() || !dr.Connected() {
		t.Fatal("generator output disconnected")
	}
}

func TestRandomGeoConnectedAndSeeded(t *testing.T) {
	a := RandomGeo("m", 30, 2000, 1500, 0.4, 0.3, Cap10G, 7)
	bg := RandomGeo("m", 30, 2000, 1500, 0.4, 0.3, Cap10G, 7)
	if !a.Connected() {
		t.Fatal("random geo must be connected")
	}
	if a.NumLinks() != bg.NumLinks() {
		t.Fatal("same seed must give same network")
	}
	c := RandomGeo("m", 30, 2000, 1500, 0.4, 0.3, Cap10G, 8)
	if c.NumLinks() == a.NumLinks() {
		t.Log("different seeds gave same link count (possible but unlikely)")
	}
}

func TestMultiRegionStructure(t *testing.T) {
	g := MultiRegion("mr", 3, 8, 1000, 4000, 2, Cap40G, Cap100G, 3)
	if g.NumNodes() != 24 {
		t.Fatalf("nodes = %d, want 24", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("multi-region must be connected")
	}
	// Long-haul links must have the long-haul capacity tier.
	found100 := false
	for _, l := range g.Links() {
		if l.Capacity == Cap100G {
			found100 = true
			break
		}
	}
	if !found100 {
		t.Fatal("no long-haul links found")
	}
}

func TestGTSLikeStructure(t *testing.T) {
	g := GTSLike()
	if !g.Connected() {
		t.Fatal("gts-like disconnected")
	}
	// The Figure 5 pathology requires Veszprem to have exactly two
	// neighbors: Gyor and Budapest.
	v, ok := g.NodeByName("Veszprem")
	if !ok {
		t.Fatal("Veszprem missing")
	}
	out := g.Out(v.ID)
	if len(out) != 2 {
		t.Fatalf("Veszprem has %d outgoing links, want 2", len(out))
	}
	neighbors := map[string]bool{}
	for _, lid := range out {
		neighbors[g.Node(g.Link(lid).To).Name] = true
	}
	if !neighbors["Gyor"] || !neighbors["Budapest"] {
		t.Fatalf("Veszprem neighbors = %v, want Gyor and Budapest", neighbors)
	}
	if d := g.Diameter(); d < 0.010 {
		t.Fatalf("gts-like diameter %.1fms, want > 10ms like the paper's dataset", d*1000)
	}
}

func TestCogentLikeTiers(t *testing.T) {
	g := CogentLike()
	if !g.Connected() {
		t.Fatal("cogent-like disconnected")
	}
	ny, _ := g.NodeByName("NewYork")
	lon, _ := g.NodeByName("London")
	l, ok := g.FindLink(ny.ID, lon.ID)
	if !ok {
		t.Fatal("transatlantic NewYork-London link missing")
	}
	if l.Capacity != Cap100G {
		t.Fatalf("transatlantic capacity = %v, want 100G", l.Capacity)
	}
	if l.Delay < 0.025 {
		t.Fatalf("transatlantic delay = %.1fms, implausibly low", l.Delay*1000)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := GTSLike()
	data := Marshal(g)
	h, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if h.Name() != g.Name() || h.NumNodes() != g.NumNodes() || h.NumLinks() != g.NumLinks() {
		t.Fatalf("roundtrip mismatch: %s %d/%d vs %s %d/%d",
			h.Name(), h.NumNodes(), h.NumLinks(), g.Name(), g.NumNodes(), g.NumLinks())
	}
	for i := 0; i < g.NumLinks(); i++ {
		a, b := g.Link(graph.LinkID(i)), h.Link(graph.LinkID(i))
		if a.From != b.From || a.To != b.To || a.Capacity != b.Capacity {
			t.Fatalf("link %d mismatch", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"node x 1 2",
		"topology t\nnode x 1",
		"topology t\nnode x a b",
		"topology t\nlink a b 1 1",
		"topology t\nnode a 1 1\nnode b 2 2\nlink a b xx 1",
		"topology t\nbogus directive",
		"topology t\ntopology t2",
	}
	for i, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\ntopology t\n\nnode a 1 1\nnode b 2 2\nlink a b 1e9 0.001\n"
	g, err := Unmarshal([]byte(ok))
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if g.NumLinks() != 1 {
		t.Fatalf("links = %d, want 1", g.NumLinks())
	}
}

func TestMedianLinkCapacity(t *testing.T) {
	g := CogentLike()
	m := MedianLinkCapacity(g)
	if m != Cap40G {
		t.Fatalf("median capacity = %v, want 40G (regional tier dominates)", m)
	}
}
