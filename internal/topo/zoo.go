package topo

import (
	"fmt"

	"lowlat/internal/graph"
)

// Class buckets the zoo's networks by structure; the paper's analysis maps
// classes to LLPD ranges (trees ≈ 0, rings mid, grids/intercontinental
// high, cliques degenerate).
type Class string

// Zoo structural classes.
const (
	ClassStar             Class = "star"
	ClassTree             Class = "tree"
	ClassWheel            Class = "wheel"
	ClassRing             Class = "ring"
	ClassChordedRing      Class = "chorded-ring"
	ClassDoubleRing       Class = "double-ring"
	ClassLadder           Class = "ladder"
	ClassGrid             Class = "grid"
	ClassGridDiag         Class = "grid-diag"
	ClassMesh             Class = "mesh"
	ClassIntercontinental Class = "intercontinental"
	ClassClique           Class = "clique"
)

// Entry is one zoo network: a name, its structural class, and a lazy
// deterministic constructor.
type Entry struct {
	Name  string
	Class Class
	Build func() *graph.Graph
}

// ZooSize is the number of networks in the synthetic zoo, matching the 116
// Topology Zoo networks the paper studies.
const ZooSize = 116

// Zoo returns the full synthetic topology zoo: 116 deterministic networks
// spanning the structural spectrum of the Internet Topology Zoo, including
// the GTS-like and Cogent-like networks the paper's narrative features.
// GoogleLike is deliberately not part of the zoo (the paper adds it
// separately in Figure 19).
func Zoo() []Entry {
	var entries []Entry
	add := func(name string, class Class, build func() *graph.Graph) {
		entries = append(entries, Entry{Name: name, Class: class, Build: build})
	}

	for _, leaves := range []int{6, 9, 12, 16, 20, 26} {
		l := leaves
		add(fmt.Sprintf("star-%d", l), ClassStar, func() *graph.Graph {
			return Star(fmt.Sprintf("star-%d", l), l, 900, Cap10G)
		})
	}
	for _, bd := range [][2]int{{2, 3}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {4, 3}} {
		b, d := bd[0], bd[1]
		add(fmt.Sprintf("tree-%dx%d", b, d), ClassTree, func() *graph.Graph {
			return Tree(fmt.Sprintf("tree-%dx%d", b, d), b, d, 450, Cap10G)
		})
	}
	for _, leaves := range []int{6, 8, 10, 12, 16, 20} {
		l := leaves
		add(fmt.Sprintf("wheel-%d", l), ClassWheel, func() *graph.Graph {
			return Wheel(fmt.Sprintf("wheel-%d", l), l, 1100, Cap10G)
		})
	}
	for _, n := range []int{8, 10, 12, 14, 16, 20, 24, 28, 32, 36} {
		nn := n
		add(fmt.Sprintf("ring-%d", nn), ClassRing, func() *graph.Graph {
			return Ring(fmt.Sprintf("ring-%d", nn), nn, 1400, Cap10G)
		})
	}
	for _, ne := range [][2]int{{12, 3}, {16, 2}, {16, 4}, {20, 5}, {24, 3}, {24, 6}, {28, 7}, {32, 8}} {
		n, e := ne[0], ne[1]
		add(fmt.Sprintf("chord-ring-%d-%d", n, e), ClassChordedRing, func() *graph.Graph {
			return ChordedRing(fmt.Sprintf("chord-ring-%d-%d", n, e), n, e, 1400, Cap10G)
		})
	}
	for _, n := range []int{5, 6, 8, 10, 12, 14} {
		nn := n
		add(fmt.Sprintf("double-ring-%d", nn), ClassDoubleRing, func() *graph.Graph {
			return DoubleRing(fmt.Sprintf("double-ring-%d", nn), nn, 1500, Cap10G)
		})
	}
	for _, rungs := range []int{4, 5, 6, 8, 10, 12} {
		r := rungs
		add(fmt.Sprintf("ladder-%d", r), ClassLadder, func() *graph.Graph {
			return Ladder(fmt.Sprintf("ladder-%d", r), r, 550, Cap10G)
		})
	}
	for _, wh := range [][2]int{
		{3, 3}, {3, 4}, {4, 4}, {3, 5}, {4, 5}, {5, 5}, {4, 6}, {5, 6},
		{6, 6}, {4, 7}, {5, 7}, {6, 7}, {7, 7}, {5, 8}, {6, 8}, {7, 8},
	} {
		w, h := wh[0], wh[1]
		add(fmt.Sprintf("grid-%dx%d", w, h), ClassGrid, func() *graph.Graph {
			return Grid(fmt.Sprintf("grid-%dx%d", w, h), w, h, 650, Cap10G)
		})
	}
	for _, wh := range [][2]int{{3, 3}, {4, 4}, {4, 5}, {5, 5}, {5, 6}, {6, 6}} {
		w, h := wh[0], wh[1]
		add(fmt.Sprintf("grid-diag-%dx%d", w, h), ClassGridDiag, func() *graph.Graph {
			return GridDiag(fmt.Sprintf("grid-diag-%dx%d", w, h), w, h, 700, Cap10G)
		})
	}
	seed := int64(1000)
	for _, n := range []int{12, 16, 20, 24, 28, 32, 36, 40} {
		for _, dense := range []bool{false, true} {
			nn, dd, s := n, dense, seed
			seed++
			suffix := "sparse"
			alpha := 0.25
			if dd {
				suffix = "dense"
				alpha = 0.6
			}
			name := fmt.Sprintf("mesh-%d-%s", nn, suffix)
			add(name, ClassMesh, func() *graph.Graph {
				return RandomGeo(name, nn, 3200, 2300, alpha, 0.3, Cap10G, s)
			})
		}
	}
	for _, n := range []int{28, 32, 36, 40, 44, 48, 56, 64, 72, 80} {
		nn, s := n, seed
		seed++
		name := fmt.Sprintf("mesh-%d-wide", nn)
		add(name, ClassMesh, func() *graph.Graph {
			return RandomGeo(name, nn, 4600, 3000, 0.3, 0.22, Cap10G, s)
		})
	}
	add("grid-8x8", ClassGrid, func() *graph.Graph {
		return Grid("grid-8x8", 8, 8, 650, Cap10G)
	})
	for i, cfg := range [][3]int{
		{2, 8, 2}, {2, 10, 3}, {2, 12, 3}, {3, 8, 2}, {3, 10, 3},
		{2, 16, 4}, {3, 12, 3}, {2, 20, 4}, {4, 8, 2}, {3, 16, 4}, {4, 10, 3},
	} {
		regions, per, inter := cfg[0], cfg[1], cfg[2]
		s := int64(5000 + i)
		name := fmt.Sprintf("intercont-%dx%d-%d", regions, per, inter)
		add(name, ClassIntercontinental, func() *graph.Graph {
			return MultiRegion(name, regions, per, 1600, 5200, inter, Cap40G, Cap100G, s)
		})
	}
	for _, n := range []int{5, 6, 8, 10, 12, 14} {
		nn := n
		add(fmt.Sprintf("clique-%d", nn), ClassClique, func() *graph.Graph {
			return Clique(fmt.Sprintf("clique-%d", nn), nn, 1600, Cap10G)
		})
	}
	add("gts-like", ClassGrid, GTSLike)
	add("cogent-like", ClassIntercontinental, CogentLike)

	if len(entries) != ZooSize {
		panic(fmt.Sprintf("topo: zoo has %d entries, want %d", len(entries), ZooSize))
	}
	return entries
}

// ByName returns the zoo entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Zoo() {
		if e.Name == name {
			return e, true
		}
	}
	if name == "google-like" {
		return Entry{Name: name, Class: ClassIntercontinental, Build: GoogleLike}, true
	}
	return Entry{}, false
}
