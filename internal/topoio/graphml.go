package topoio

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// GraphMLOptions controls how Topology Zoo GraphML is interpreted.
type GraphMLOptions struct {
	// DefaultCapacity is used for edges that carry no recognizable
	// speed attribute (bits/sec). Default 10 Gb/s, the zoo's most
	// common provisioned tier.
	DefaultCapacity float64
	// DefaultDelay is used for edges between nodes lacking coordinates
	// (seconds). Default 1 ms.
	DefaultDelay float64
	// Slack inflates great-circle distances when deriving delays, to
	// model fiber paths not following great circles (default 1.0).
	Slack float64
	// KeepName overrides the graph name; empty uses the GraphML
	// "Network" attribute or the graph element id.
	KeepName string
}

func (o GraphMLOptions) withDefaults() GraphMLOptions {
	if o.DefaultCapacity <= 0 {
		o.DefaultCapacity = 10e9
	}
	if o.DefaultDelay <= 0 {
		o.DefaultDelay = 0.001
	}
	if o.Slack <= 0 {
		o.Slack = geo.DefaultSlack
	}
	return o
}

// Raw XML shapes. GraphML is attribute-soup: typed values live in <data>
// children keyed by <key> declarations, so decoding happens in two passes.

type xmlGraphML struct {
	XMLName xml.Name    `xml:"graphml"`
	Keys    []xmlKey    `xml:"key"`
	Graphs  []xmlGraphG `xml:"graph"`
}

type xmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
	AttrType string `xml:"attr.type,attr"`
}

type xmlGraphG struct {
	ID          string    `xml:"id,attr"`
	EdgeDefault string    `xml:"edgedefault,attr"`
	Data        []xmlData `xml:"data"`
	Nodes       []xmlNode `xml:"node"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string    `xml:"source,attr"`
	Target string    `xml:"target,attr"`
	Data   []xmlData `xml:"data"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// attrs resolves <data> entries against <key> declarations into a
// name -> value map.
type keyTable map[string]string // key id -> attr.name (lower-cased)

func (kt keyTable) resolve(data []xmlData) map[string]string {
	m := make(map[string]string, len(data))
	for _, d := range data {
		name, ok := kt[d.Key]
		if !ok {
			name = strings.ToLower(d.Key)
		}
		m[name] = strings.TrimSpace(d.Value)
	}
	return m
}

// ReadGraphML parses Internet Topology Zoo GraphML. Node coordinates come
// from the zoo's Latitude/Longitude attributes; link capacities from
// LinkSpeedRaw (bits/sec) when present; link delays are derived from
// great-circle distance, as the paper does via [16].
func ReadGraphML(r io.Reader, opts GraphMLOptions) (*graph.Graph, error) {
	opts = opts.withDefaults()

	var doc xmlGraphML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, errf(FormatGraphML, "decode", "%v", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, errf(FormatGraphML, "structure", "no <graph> element")
	}
	gx := doc.Graphs[0]

	kt := make(keyTable, len(doc.Keys))
	for _, k := range doc.Keys {
		kt[k.ID] = strings.ToLower(k.AttrName)
	}

	name := opts.KeepName
	if name == "" {
		gattrs := kt.resolve(gx.Data)
		name = gattrs["network"]
	}
	if name == "" {
		name = gx.ID
	}
	if name == "" {
		name = "graphml"
	}

	b := graph.NewBuilder(name)
	type nodeInfo struct {
		id     graph.NodeID
		loc    geo.Point
		hasLoc bool
	}
	nodes := make(map[string]nodeInfo, len(gx.Nodes))
	usedNames := make(map[string]int, len(gx.Nodes))
	for _, n := range gx.Nodes {
		attrs := kt.resolve(n.Data)
		label := attrs["label"]
		if label == "" {
			label = "node-" + n.ID
		}
		// The zoo reuses city labels within one map; disambiguate.
		if c := usedNames[label]; c > 0 {
			label = fmt.Sprintf("%s#%d", label, c)
		}
		usedNames[attrs["label"]]++

		var loc geo.Point
		hasLoc := false
		if lat, ok := parseFloat(attrs["latitude"]); ok {
			if lon, ok2 := parseFloat(attrs["longitude"]); ok2 {
				loc = geo.Point{Lat: lat, Lon: lon}
				hasLoc = true
			}
		}
		if _, dup := nodes[n.ID]; dup {
			return nil, errf(FormatGraphML, "node", "duplicate node id %q", n.ID)
		}
		id := b.AddNode(label, loc)
		nodes[n.ID] = nodeInfo{id: id, loc: loc, hasLoc: hasLoc}
	}

	directed := gx.EdgeDefault == "directed"
	for i, e := range gx.Edges {
		src, ok := nodes[e.Source]
		if !ok {
			return nil, errf(FormatGraphML, "edge", "edge %d references unknown node %q", i, e.Source)
		}
		dst, ok := nodes[e.Target]
		if !ok {
			return nil, errf(FormatGraphML, "edge", "edge %d references unknown node %q", i, e.Target)
		}
		if src.id == dst.id {
			continue // self-loops carry no routing meaning
		}
		attrs := kt.resolve(e.Data)
		capacity := edgeCapacity(attrs, opts.DefaultCapacity)

		delay := opts.DefaultDelay
		if d, ok := parseFloat(attrs["delay"]); ok && d > 0 {
			delay = d
		} else if src.hasLoc && dst.hasLoc {
			if d := geo.PropagationDelay(src.loc, dst.loc, opts.Slack); d > 0 {
				delay = d
			}
		}

		if b.HasLink(src.id, dst.id) {
			continue // parallel edges: keep the first
		}
		b.AddLink(src.id, dst.id, capacity, delay)
		if !directed && !b.HasLink(dst.id, src.id) {
			b.AddLink(dst.id, src.id, capacity, delay)
		}
	}

	return b.Build()
}

// edgeCapacity extracts a link speed in bits/sec from zoo attributes:
// LinkSpeedRaw is already bits/sec; otherwise LinkSpeed + LinkSpeedUnits.
func edgeCapacity(attrs map[string]string, def float64) float64 {
	if v, ok := parseFloat(attrs["linkspeedraw"]); ok && v > 0 {
		return v
	}
	v, ok := parseFloat(attrs["linkspeed"])
	if !ok || v <= 0 {
		return def
	}
	switch strings.ToUpper(attrs["linkspeedunits"]) {
	case "K":
		return v * 1e3
	case "M":
		return v * 1e6
	case "G", "":
		return v * 1e9
	case "T":
		return v * 1e12
	default:
		return def
	}
}

func parseFloat(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteGraphML renders g as Topology Zoo-compatible GraphML: undirected
// edges (the library's bidirectional link pairs collapse back to one
// edge), Latitude/Longitude node attributes, and LinkSpeedRaw plus an
// explicit delay attribute per edge so a round trip is lossless even
// without coordinates.
func WriteGraphML(w io.Writer, g *graph.Graph) error {
	type edgeOut struct {
		from, to graph.NodeID
		cap      float64
		delay    float64
	}
	seen := make(map[[2]graph.NodeID]bool, g.NumLinks())
	var edges []edgeOut
	asymmetric := false
	for _, l := range g.Links() {
		if seen[[2]graph.NodeID{l.To, l.From}] {
			// Reverse already emitted; verify symmetry.
			if rev, ok := g.FindLink(l.To, l.From); ok &&
				(rev.Capacity != l.Capacity || rev.Delay != l.Delay) {
				asymmetric = true
			}
			continue
		}
		if _, ok := g.FindLink(l.To, l.From); !ok {
			asymmetric = true
		}
		seen[[2]graph.NodeID{l.From, l.To}] = true
		edges = append(edges, edgeOut{from: l.From, to: l.To, cap: l.Capacity, delay: l.Delay})
	}
	if asymmetric {
		return errf(FormatGraphML, "write",
			"graph %q has asymmetric links; GraphML export assumes undirected edges", g.Name())
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	var sb strings.Builder
	sb.WriteString(xml.Header)
	sb.WriteString(`<graphml xmlns="http://graphml.graphdrawing.org/xmlns">` + "\n")
	sb.WriteString(`  <key id="d0" for="graph" attr.name="Network" attr.type="string"/>` + "\n")
	sb.WriteString(`  <key id="d1" for="node" attr.name="label" attr.type="string"/>` + "\n")
	sb.WriteString(`  <key id="d2" for="node" attr.name="Latitude" attr.type="double"/>` + "\n")
	sb.WriteString(`  <key id="d3" for="node" attr.name="Longitude" attr.type="double"/>` + "\n")
	sb.WriteString(`  <key id="d4" for="edge" attr.name="LinkSpeedRaw" attr.type="double"/>` + "\n")
	sb.WriteString(`  <key id="d5" for="edge" attr.name="delay" attr.type="double"/>` + "\n")
	sb.WriteString(`  <graph edgedefault="undirected">` + "\n")
	fmt.Fprintf(&sb, "    <data key=\"d0\">%s</data>\n", xmlEscape(g.Name()))
	for i, n := range g.Nodes() {
		fmt.Fprintf(&sb, "    <node id=\"%d\">\n", i)
		fmt.Fprintf(&sb, "      <data key=\"d1\">%s</data>\n", xmlEscape(n.Name))
		fmt.Fprintf(&sb, "      <data key=\"d2\">%.6f</data>\n", n.Loc.Lat)
		fmt.Fprintf(&sb, "      <data key=\"d3\">%.6f</data>\n", n.Loc.Lon)
		sb.WriteString("    </node>\n")
	}
	for _, e := range edges {
		fmt.Fprintf(&sb, "    <edge source=\"%d\" target=\"%d\">\n", e.from, e.to)
		fmt.Fprintf(&sb, "      <data key=\"d4\">%g</data>\n", e.cap)
		fmt.Fprintf(&sb, "      <data key=\"d5\">%.9g</data>\n", e.delay)
		sb.WriteString("    </edge>\n")
	}
	sb.WriteString("  </graph>\n</graphml>\n")

	_, err := io.WriteString(w, sb.String())
	return err
}

func xmlEscape(s string) string {
	var sb strings.Builder
	if err := xml.EscapeText(&sb, []byte(s)); err != nil {
		return s
	}
	return sb.String()
}
