package topoio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// randomSymmetric builds a random connected topology with symmetric link
// pairs, the shape both exporters assume.
func randomSymmetric(rng *rand.Rand) *graph.Graph {
	n := 2 + rng.Intn(18)
	b := graph.NewBuilder(fmt.Sprintf("rand-%d", n))
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = b.AddNode(fmt.Sprintf("n%d", i), geo.Point{
			Lat: rng.Float64()*160 - 80,
			Lon: rng.Float64()*340 - 170,
		})
	}
	link := func(a, z graph.NodeID) {
		if a == z || b.HasLink(a, z) {
			return
		}
		capacity := (1 + rng.Float64()*99) * 1e9 // 1-100 Gb/s
		delay := (0.1 + rng.Float64()*50) * 1e-3 // 0.1-50 ms
		b.AddLink(a, z, capacity, delay)
		b.AddLink(z, a, capacity, delay)
	}
	// Random spanning tree keeps it connected.
	for i := 1; i < n; i++ {
		link(ids[i], ids[rng.Intn(i)])
	}
	extra := rng.Intn(2 * n)
	for e := 0; e < extra; e++ {
		link(ids[rng.Intn(n)], ids[rng.Intn(n)])
	}
	return b.MustBuild()
}

func TestQuickGraphMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSymmetric(rng)
		var buf bytes.Buffer
		if err := WriteGraphML(&buf, g); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := ReadGraphML(bytes.NewReader(buf.Bytes()), GraphMLOptions{})
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return sameTopology(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRepetitaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSymmetric(rng)
		var buf bytes.Buffer
		if err := WriteRepetita(&buf, g); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := ReadRepetita(bytes.NewReader(buf.Bytes()), RepetitaOptions{Name: g.Name()})
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return sameTopology(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetectNeverPanicsAndReadFailsCleanly(t *testing.T) {
	f := func(junk []byte) bool {
		format := Detect(junk)
		g, err := ReadBytes(junk, ReadOptions{})
		// Arbitrary bytes must either parse into a non-nil graph or
		// produce an error — never both nil, never a panic.
		if err == nil && g == nil {
			return false
		}
		_ = format
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sameTopology is the boolean form of assertSameTopology for quick.Check.
func sameTopology(a, z *graph.Graph) bool {
	if a.NumNodes() != z.NumNodes() || a.NumLinks() != z.NumLinks() {
		return false
	}
	for _, n := range a.Nodes() {
		zn, ok := z.NodeByName(n.Name)
		if !ok {
			return false
		}
		if abs(n.Loc.Lat-zn.Loc.Lat) > 1e-4 || abs(n.Loc.Lon-zn.Loc.Lon) > 1e-4 {
			return false
		}
	}
	for _, l := range a.Links() {
		zf, ok1 := z.NodeByName(a.Node(l.From).Name)
		zt, ok2 := z.NodeByName(a.Node(l.To).Name)
		if !ok1 || !ok2 {
			return false
		}
		zl, ok := z.FindLink(zf.ID, zt.ID)
		if !ok {
			return false
		}
		if abs(zl.Capacity-l.Capacity)/l.Capacity > 1e-6 || abs(zl.Delay-l.Delay) > 1e-6 {
			return false
		}
	}
	return true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
