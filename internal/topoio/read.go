package topoio

import (
	"bytes"
	"io"
	"os"

	"lowlat/internal/graph"
	"lowlat/internal/topo"
)

// ReadOptions bundles per-format options for the auto-detecting reader.
type ReadOptions struct {
	GraphML  GraphMLOptions
	Repetita RepetitaOptions
	// Name overrides the graph name for formats that carry none.
	Name string
}

// Read sniffs the format of r's content and parses it.
func Read(r io.Reader, opts ReadOptions) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReadBytes(data, opts)
}

// ReadBytes is Read over in-memory data.
func ReadBytes(data []byte, opts ReadOptions) (*graph.Graph, error) {
	switch f := Detect(data); f {
	case FormatGraphML:
		g := opts.GraphML
		if g.KeepName == "" {
			g.KeepName = opts.Name
		}
		return ReadGraphML(bytes.NewReader(data), g)
	case FormatRepetita:
		rp := opts.Repetita
		if opts.Name != "" {
			rp.Name = opts.Name
		}
		return ReadRepetita(bytes.NewReader(data), rp)
	case FormatNative:
		return topo.Unmarshal(data)
	default:
		return nil, errf(FormatUnknown, "detect", "unrecognized topology format")
	}
}

// ReadFile loads a topology file, deriving a default name from the file
// basename when the format carries none.
func ReadFile(path string, opts ReadOptions) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = baseName(path)
	}
	return ReadBytes(data, opts)
}

func baseName(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			base = path[i+1:]
			break
		}
	}
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}
