package topoio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// The REPETITA dataset [16] stores one topology per .graph file:
//
//	NODES <n>
//	label x y
//	<n lines: name, abstract coordinates>
//
//	EDGES <m>
//	label src dest weight bw delay
//	<m lines: name, endpoint indices, IGP weight, bandwidth in Kbps,
//	 delay in microseconds>
//
// Edges are directed; zoo-derived REPETITA files list both directions.
// The paper uses REPETITA's computed link latencies to augment the
// Topology Zoo, so the delay column is authoritative here (no geographic
// derivation).

// RepetitaOptions controls REPETITA parsing.
type RepetitaOptions struct {
	// Name overrides the graph name (REPETITA files carry none; the
	// conventional name is the file basename).
	Name string
	// DefaultCapacity substitutes for zero/missing bandwidth (bits/sec,
	// default 10 Gb/s).
	DefaultCapacity float64
	// DefaultDelay substitutes for zero delay entries (seconds, default
	// 1 ms): a zero-propagation link breaks delay-proportional routing.
	DefaultDelay float64
}

func (o RepetitaOptions) withDefaults() RepetitaOptions {
	if o.Name == "" {
		o.Name = "repetita"
	}
	if o.DefaultCapacity <= 0 {
		o.DefaultCapacity = 10e9
	}
	if o.DefaultDelay <= 0 {
		o.DefaultDelay = 0.001
	}
	return o
}

// ReadRepetita parses a REPETITA .graph file.
func ReadRepetita(r io.Reader, opts RepetitaOptions) (*graph.Graph, error) {
	opts = opts.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	line, lineNo, err := nextLine(sc, 0)
	if err != nil {
		return nil, errf(FormatRepetita, "header", "missing NODES header: %v", err)
	}
	var nNodes int
	if _, err := fmt.Sscanf(line, "NODES %d", &nNodes); err != nil || nNodes <= 0 {
		return nil, errf(FormatRepetita, "header", "line %d: want \"NODES <n>\", got %q", lineNo, line)
	}

	b := graph.NewBuilder(opts.Name)
	ids := make([]graph.NodeID, 0, nNodes)
	// Skip the per-section column legend if present ("label x y").
	peeked, peekedNo, err := nextLine(sc, lineNo)
	if err != nil {
		return nil, errf(FormatRepetita, "nodes", "truncated after header: %v", err)
	}
	if !strings.HasPrefix(peeked, "label") {
		id, err := parseRepetitaNode(b, peeked, peekedNo)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	} else {
		lineNo = peekedNo
	}
	for len(ids) < nNodes {
		line, n, err := nextLine(sc, lineNo)
		if err != nil {
			return nil, errf(FormatRepetita, "nodes", "want %d nodes, got %d: %v", nNodes, len(ids), err)
		}
		lineNo = n
		id, err := parseRepetitaNode(b, line, n)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}

	line, lineNo, err = nextLine(sc, lineNo)
	if err != nil {
		return nil, errf(FormatRepetita, "header", "missing EDGES header: %v", err)
	}
	var nEdges int
	if _, err := fmt.Sscanf(line, "EDGES %d", &nEdges); err != nil || nEdges < 0 {
		return nil, errf(FormatRepetita, "header", "line %d: want \"EDGES <m>\", got %q", lineNo, line)
	}

	parsed := 0
	for parsed < nEdges {
		line, n, err := nextLine(sc, lineNo)
		if err != nil {
			return nil, errf(FormatRepetita, "edges", "want %d edges, got %d: %v", nEdges, parsed, err)
		}
		lineNo = n
		if strings.HasPrefix(line, "label") {
			continue // column legend
		}
		f := strings.Fields(line)
		if len(f) != 6 {
			return nil, errf(FormatRepetita, "edges", "line %d: want 6 fields, got %d (%q)", n, len(f), line)
		}
		src, err1 := strconv.Atoi(f[1])
		dst, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || src < 0 || src >= nNodes || dst < 0 || dst >= nNodes {
			return nil, errf(FormatRepetita, "edges", "line %d: bad endpoints %q %q", n, f[1], f[2])
		}
		if src == dst {
			parsed++
			continue
		}
		bwKbps, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, errf(FormatRepetita, "edges", "line %d: bad bandwidth %q", n, f[4])
		}
		delayUs, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			return nil, errf(FormatRepetita, "edges", "line %d: bad delay %q", n, f[5])
		}
		capacity := bwKbps * 1e3
		if capacity <= 0 {
			capacity = opts.DefaultCapacity
		}
		delay := delayUs * 1e-6
		if delay <= 0 {
			delay = opts.DefaultDelay
		}
		if !b.HasLink(ids[src], ids[dst]) {
			b.AddLink(ids[src], ids[dst], capacity, delay)
		}
		parsed++
	}

	return b.Build()
}

func parseRepetitaNode(b *graph.Builder, line string, lineNo int) (graph.NodeID, error) {
	f := strings.Fields(line)
	if len(f) != 3 {
		return 0, errf(FormatRepetita, "nodes", "line %d: want \"label x y\", got %q", lineNo, line)
	}
	x, err1 := strconv.ParseFloat(f[1], 64)
	y, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return 0, errf(FormatRepetita, "nodes", "line %d: bad coordinates %q", lineNo, line)
	}
	// REPETITA coordinates are abstract longitude/latitude-ish values;
	// store them as (lat=y, lon=x) so exports preserve them.
	return b.AddNode(f[0], geo.Point{Lat: y, Lon: x}), nil
}

func nextLine(sc *bufio.Scanner, lineNo int) (string, int, error) {
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, lineNo, nil
	}
	if err := sc.Err(); err != nil {
		return "", lineNo, err
	}
	return "", lineNo, io.ErrUnexpectedEOF
}

// WriteRepetita renders g in REPETITA format: every directed link becomes
// one edge line with bandwidth in Kbps and delay in microseconds. IGP
// weights are delays in microseconds, matching the paper's
// delay-proportional link costs.
func WriteRepetita(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NODES %d\nlabel x y\n", g.NumNodes())
	for _, n := range g.Nodes() {
		fmt.Fprintf(bw, "%s %.6f %.6f\n", sanitizeLabel(n.Name), n.Loc.Lon, n.Loc.Lat)
	}
	fmt.Fprintf(bw, "\nEDGES %d\nlabel src dest weight bw delay\n", g.NumLinks())
	for i, l := range g.Links() {
		us := l.Delay * 1e6
		fmt.Fprintf(bw, "edge_%d %d %d %.0f %.0f %.3f\n",
			i, l.From, l.To, us, l.Capacity/1e3, us)
	}
	return bw.Flush()
}

// sanitizeLabel keeps node labels single-token (the format is
// whitespace-separated).
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n':
			return '_'
		}
		return r
	}, s)
}
