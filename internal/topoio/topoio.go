// Package topoio reads and writes the on-disk topology formats the paper's
// data pipeline consumes: Internet Topology Zoo GraphML [29] and the
// REPETITA dataset format of Gay et al. [16], which the paper uses for its
// computed link latencies.
//
// Both readers produce the library's immutable graph.Graph. Following the
// paper's convention, when a format carries node coordinates but no link
// delays (the Topology Zoo case), delays are derived from great-circle
// distance at fiber propagation speed.
package topoio

import (
	"bytes"
	"fmt"
)

// Format identifies an on-disk topology format.
type Format int

const (
	// FormatUnknown is returned by Detect for unrecognized input.
	FormatUnknown Format = iota
	// FormatGraphML is Internet Topology Zoo GraphML.
	FormatGraphML
	// FormatRepetita is the REPETITA .graph format.
	FormatRepetita
	// FormatNative is the library's plain-text format (topo.Marshal).
	FormatNative
)

// String returns the format's conventional name.
func (f Format) String() string {
	switch f {
	case FormatGraphML:
		return "graphml"
	case FormatRepetita:
		return "repetita"
	case FormatNative:
		return "native"
	default:
		return "unknown"
	}
}

// Detect sniffs the topology format of data. GraphML is XML containing a
// <graphml> element; REPETITA files start with a "NODES <n>" header; the
// native format starts with "topology <name>".
func Detect(data []byte) Format {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case bytes.HasPrefix(trimmed, []byte("<")) && bytes.Contains(data, []byte("<graphml")):
		return FormatGraphML
	case bytes.HasPrefix(trimmed, []byte("NODES ")):
		return FormatRepetita
	case bytes.HasPrefix(trimmed, []byte("topology ")):
		return FormatNative
	default:
		return FormatUnknown
	}
}

// parseError reports a position-annotated parse failure.
type parseError struct {
	format Format
	what   string
	detail string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("topoio: %s: %s: %s", e.format, e.what, e.detail)
}

func errf(format Format, what, detail string, args ...interface{}) error {
	return &parseError{format: format, what: what, detail: fmt.Sprintf(detail, args...)}
}
