package topoio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/metrics"
	"lowlat/internal/topo"
)

func readTestdata(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDetect(t *testing.T) {
	cases := []struct {
		in   string
		want Format
	}{
		{"<?xml version=\"1.0\"?>\n<graphml>", FormatGraphML},
		{"  \n<graphml xmlns=\"x\">", FormatGraphML},
		{"NODES 3\nlabel x y\n", FormatRepetita},
		{"topology foo\nnode a 0 0\n", FormatNative},
		{"random text", FormatUnknown},
		{"", FormatUnknown},
		{"<svg></svg>", FormatUnknown},
	}
	for _, c := range cases {
		if got := Detect([]byte(c.in)); got != c.want {
			t.Errorf("Detect(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatString(t *testing.T) {
	for f, want := range map[Format]string{
		FormatGraphML:  "graphml",
		FormatRepetita: "repetita",
		FormatNative:   "native",
		FormatUnknown:  "unknown",
	} {
		if got := f.String(); got != want {
			t.Errorf("Format(%d).String() = %q, want %q", f, got, want)
		}
	}
}

func TestReadGraphMLZooFile(t *testing.T) {
	g, err := ReadGraphML(bytes.NewReader(readTestdata(t, "abilene-like.graphml")), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "AbileneLike" {
		t.Fatalf("name = %q, want AbileneLike", g.Name())
	}
	if g.NumNodes() != 11 {
		t.Fatalf("nodes = %d, want 11", g.NumNodes())
	}
	// 14 undirected edges -> 28 directed links.
	if g.NumLinks() != 28 {
		t.Fatalf("links = %d, want 28", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("abilene-like must be connected")
	}

	// All capacities come from LinkSpeedRaw.
	for _, l := range g.Links() {
		if l.Capacity != 10e9 {
			t.Fatalf("capacity = %v, want 10e9", l.Capacity)
		}
	}

	// Delay must be geographic: NY<->Chicago is ~1145 km great circle,
	// so ~5.7 ms at fiber speed.
	ny, ok := g.NodeByName("New York")
	if !ok {
		t.Fatal("New York missing")
	}
	chi, ok := g.NodeByName("Chicago")
	if !ok {
		t.Fatal("Chicago missing")
	}
	l, ok := g.FindLink(ny.ID, chi.ID)
	if !ok {
		t.Fatal("NY-Chicago link missing")
	}
	if l.Delay < 0.004 || l.Delay > 0.008 {
		t.Fatalf("NY-Chicago delay = %v s, want ~5.7ms", l.Delay)
	}

	// The loaded network should be analyzable like any zoo network.
	llpd := metrics.LLPD(g, metrics.APAConfig{})
	if llpd < 0 || llpd > 1 {
		t.Fatalf("LLPD = %v out of range", llpd)
	}
}

func TestReadGraphMLDuplicateLabels(t *testing.T) {
	src := `<graphml>
  <key attr.name="label" attr.type="string" for="node" id="k"/>
  <graph edgedefault="undirected">
    <node id="a"><data key="k">Springfield</data></node>
    <node id="b"><data key="k">Springfield</data></node>
    <edge source="a" target="b"/>
  </graph>
</graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", g.NumNodes())
	}
	if g.Nodes()[0].Name == g.Nodes()[1].Name {
		t.Fatal("duplicate labels must be disambiguated")
	}
}

func TestReadGraphMLDefaults(t *testing.T) {
	// No coordinates, no speeds: defaults apply.
	src := `<graphml>
  <graph edgedefault="undirected">
    <node id="0"/><node id="1"/>
    <edge source="0" target="1"/>
  </graph>
</graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{
		DefaultCapacity: 42e9, DefaultDelay: 0.007,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := g.Links()[0]
	if l.Capacity != 42e9 || l.Delay != 0.007 {
		t.Fatalf("defaults not applied: %+v", l)
	}
	if g.Node(l.From).Name != "node-0" {
		t.Fatalf("fallback label = %q", g.Node(l.From).Name)
	}
}

func TestReadGraphMLLinkSpeedUnits(t *testing.T) {
	src := `<graphml>
  <key attr.name="LinkSpeed" attr.type="string" for="edge" id="s"/>
  <key attr.name="LinkSpeedUnits" attr.type="string" for="edge" id="u"/>
  <graph edgedefault="undirected">
    <node id="0"/><node id="1"/><node id="2"/><node id="3"/>
    <edge source="0" target="1"><data key="s">155</data><data key="u">M</data></edge>
    <edge source="1" target="2"><data key="s">2.5</data><data key="u">G</data></edge>
    <edge source="2" target="3"><data key="s">1</data><data key="u">T</data></edge>
  </graph>
</graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var caps []float64
	for _, l := range g.Links() {
		caps = append(caps, l.Capacity)
	}
	want := map[float64]bool{155e6: true, 2.5e9: true, 1e12: true}
	for _, c := range caps {
		if !want[c] {
			t.Fatalf("unexpected capacity %v", c)
		}
	}
}

func TestReadGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":                     "not xml at all",
		"no graph":                    "<graphml></graphml>",
		"bad edge ref":                `<graphml><graph><node id="0"/><edge source="0" target="9"/></graph></graphml>`,
		"duplicate node id":           `<graphml><graph><node id="0"/><node id="0"/></graph></graphml>`,
		"truncated element structure": "<graphml><graph><node",
	}
	for name, src := range cases {
		if _, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{}); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestReadGraphMLSelfLoopAndParallelEdges(t *testing.T) {
	src := `<graphml>
  <graph edgedefault="undirected">
    <node id="0"/><node id="1"/>
    <edge source="0" target="0"/>
    <edge source="0" target="1"/>
    <edge source="0" target="1"/>
  </graph>
</graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 2 {
		t.Fatalf("links = %d, want 2 (self-loop dropped, parallel deduped)", g.NumLinks())
	}
}

func TestGraphMLRoundTrip(t *testing.T) {
	orig := topo.GTSLike()
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphML(bytes.NewReader(buf.Bytes()), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopology(t, orig, back)
}

func TestWriteGraphMLRejectsAsymmetric(t *testing.T) {
	b := graph.NewBuilder("asym")
	a := b.AddNode("a", geo.Point{})
	z := b.AddNode("z", geo.Point{})
	b.AddLink(a, z, 1e9, 0.001) // one direction only
	g := b.MustBuild()
	if err := WriteGraphML(&bytes.Buffer{}, g); err == nil {
		t.Fatal("want error for asymmetric graph")
	}
}

func TestReadRepetitaSquare(t *testing.T) {
	g, err := ReadRepetita(bytes.NewReader(readTestdata(t, "square.graph")), RepetitaOptions{Name: "square"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "square" {
		t.Fatalf("name = %q", g.Name())
	}
	if g.NumNodes() != 4 || g.NumLinks() != 8 {
		t.Fatalf("got %d nodes, %d links; want 4, 8", g.NumNodes(), g.NumLinks())
	}
	for _, l := range g.Links() {
		if l.Capacity != 10e9 { // 10000000 Kbps
			t.Fatalf("capacity = %v, want 10e9", l.Capacity)
		}
		if math.Abs(l.Delay-0.001) > 1e-12 { // 1000 us
			t.Fatalf("delay = %v, want 1ms", l.Delay)
		}
	}
}

func TestReadRepetitaErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "NODES x\n",
		"missing nodes":  "NODES 2\nlabel x y\nn0 0 0\n",
		"missing edges":  "NODES 1\nlabel x y\nn0 0 0\nEDGES 1\nlabel src dest weight bw delay\n",
		"bad edge field": "NODES 2\nlabel x y\nn0 0 0\nn1 1 1\nEDGES 1\nlabel src dest weight bw delay\nedge_0 0 1 1 xx 10\n",
		"edge oob":       "NODES 2\nlabel x y\nn0 0 0\nn1 1 1\nEDGES 1\nlabel src dest weight bw delay\nedge_0 0 7 1 10 10\n",
		"short edge":     "NODES 2\nlabel x y\nn0 0 0\nn1 1 1\nEDGES 1\nlabel src dest weight bw delay\nedge_0 0 1\n",
		"bad node line":  "NODES 1\nlabel x y\nn0 zero zero\nEDGES 0\n",
	}
	for name, src := range cases {
		if _, err := ReadRepetita(strings.NewReader(src), RepetitaOptions{}); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestRepetitaDefaultsApplied(t *testing.T) {
	src := "NODES 2\nlabel x y\nn0 0 0\nn1 1 1\nEDGES 1\nlabel src dest weight bw delay\nedge_0 0 1 1 0 0\n"
	g, err := ReadRepetita(strings.NewReader(src), RepetitaOptions{DefaultCapacity: 5e9, DefaultDelay: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	l := g.Links()[0]
	if l.Capacity != 5e9 || l.Delay != 0.002 {
		t.Fatalf("defaults not applied: %+v", l)
	}
}

func TestRepetitaRoundTrip(t *testing.T) {
	orig := topo.GTSLike()
	var buf bytes.Buffer
	if err := WriteRepetita(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepetita(bytes.NewReader(buf.Bytes()), RepetitaOptions{Name: orig.Name()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopology(t, orig, back)
}

func TestReadBytesDispatch(t *testing.T) {
	// GraphML.
	if g, err := ReadBytes(readTestdata(t, "abilene-like.graphml"), ReadOptions{}); err != nil || g.NumNodes() != 11 {
		t.Fatalf("graphml dispatch: g=%v err=%v", g, err)
	}
	// REPETITA.
	if g, err := ReadBytes(readTestdata(t, "square.graph"), ReadOptions{Name: "sq"}); err != nil || g.Name() != "sq" {
		t.Fatalf("repetita dispatch: err=%v", err)
	}
	// Native.
	native := topo.Marshal(topo.GTSLike())
	if g, err := ReadBytes(native, ReadOptions{}); err != nil || g.Name() != "gts-like" {
		t.Fatalf("native dispatch: err=%v", err)
	}
	// Unknown.
	if _, err := ReadBytes([]byte("?????"), ReadOptions{}); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mynet.graph")
	var buf bytes.Buffer
	if err := WriteRepetita(&buf, topo.GTSLike()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "mynet" {
		t.Fatalf("name from basename = %q, want mynet", g.Name())
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.graph"), ReadOptions{}); err == nil {
		t.Fatal("missing file must error")
	}
}

// assertSameTopology verifies node names, locations, and per-link
// capacity/delay match between two graphs (up to formatting precision).
func assertSameTopology(t *testing.T, a, z *graph.Graph) {
	t.Helper()
	if a.NumNodes() != z.NumNodes() || a.NumLinks() != z.NumLinks() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d links",
			a.NumNodes(), z.NumNodes(), a.NumLinks(), z.NumLinks())
	}
	for _, n := range a.Nodes() {
		zn, ok := z.NodeByName(n.Name)
		if !ok {
			t.Fatalf("node %q missing after round trip", n.Name)
		}
		if math.Abs(n.Loc.Lat-zn.Loc.Lat) > 1e-4 || math.Abs(n.Loc.Lon-zn.Loc.Lon) > 1e-4 {
			t.Fatalf("node %q moved: %+v vs %+v", n.Name, n.Loc, zn.Loc)
		}
	}
	for _, l := range a.Links() {
		fromName := a.Node(l.From).Name
		toName := a.Node(l.To).Name
		zf, _ := z.NodeByName(fromName)
		zt, _ := z.NodeByName(toName)
		zl, ok := z.FindLink(zf.ID, zt.ID)
		if !ok {
			t.Fatalf("link %s->%s missing after round trip", fromName, toName)
		}
		if math.Abs(zl.Capacity-l.Capacity)/l.Capacity > 1e-6 {
			t.Fatalf("link %s->%s capacity %v vs %v", fromName, toName, l.Capacity, zl.Capacity)
		}
		if math.Abs(zl.Delay-l.Delay) > 1e-6 {
			t.Fatalf("link %s->%s delay %v vs %v", fromName, toName, l.Delay, zl.Delay)
		}
	}
}
