package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lowlat/internal/graph"
	"lowlat/internal/tm"
)

// DemandSample is one timestamped demand observation for an ordered PoP
// pair, the unit of a replayable demand trace (the stand-in for replaying
// measured per-aggregate demand against the routing schemes).
type DemandSample struct {
	// Time is seconds from the trace start. Samples sharing a timestamp
	// belong to the same epoch.
	Time float64
	// Src and Dst name the endpoints; they are resolved against a topology
	// at replay time.
	Src, Dst string
	// Bps is the aggregate's demand from this time onward. A value <= 0
	// retires the pair (its demand ends).
	Bps float64
}

// DemandTrace is a timestamped sequence of demand updates. Demands carry
// forward: a sample sets its pair's volume for every subsequent epoch
// until another sample overrides or retires it.
type DemandTrace struct {
	Samples []DemandSample
}

// normalized returns the samples in replay order: ascending time, ties
// broken by (src, dst, input order) so replay is deterministic whatever
// order the samples arrived in. Out-of-order input is legal — collectors
// flush per-aggregate buffers independently — and is simply re-sorted.
// The second slice maps each position back to its index in t.Samples, so
// diagnostics can cite the caller's original ordering.
func (t *DemandTrace) normalized() ([]DemandSample, []int) {
	idx := make([]int, len(t.Samples))
	for i := range idx {
		idx[i] = i
	}
	s := t.Samples
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if s[i].Time != s[j].Time {
			return s[i].Time < s[j].Time
		}
		if s[i].Src != s[j].Src {
			return s[i].Src < s[j].Src
		}
		return s[i].Dst < s[j].Dst
	})
	out := make([]DemandSample, len(idx))
	for a, i := range idx {
		out[a] = s[i]
	}
	return out, idx
}

// Epochs returns the distinct sample timestamps in ascending order — the
// replay's epoch boundaries.
func (t *DemandTrace) Epochs() []float64 {
	samples, _ := t.normalized()
	var out []float64
	for _, s := range samples {
		if len(out) == 0 || s.Time != out[len(out)-1] {
			out = append(out, s.Time)
		}
	}
	return out
}

// Matrices replays the trace against a topology: one traffic matrix per
// distinct timestamp, each holding the latest demand of every live pair.
// It errors on an empty trace, on endpoints missing from the topology, and
// on self-pair samples; out-of-order timestamps are re-sorted, not errors.
func (t *DemandTrace) Matrices(g *graph.Graph) ([]*tm.Matrix, error) {
	samples, orig := t.normalized()
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace: empty demand trace")
	}
	type pair struct{ src, dst graph.NodeID }
	live := make(map[pair]float64)
	var out []*tm.Matrix
	flush := func() {
		aggs := make([]tm.Aggregate, 0, len(live))
		for p, bps := range live {
			aggs = append(aggs, tm.Aggregate{Src: p.src, Dst: p.dst, Volume: bps})
		}
		out = append(out, tm.New(aggs))
	}
	for i, s := range samples {
		// Diagnostics cite the sample's position in t.Samples (the order
		// the caller supplied), not its post-sort replay position.
		src, ok := g.NodeByName(s.Src)
		if !ok {
			return nil, fmt.Errorf("trace: sample %d: node %q not in topology %q", orig[i], s.Src, g.Name())
		}
		dst, ok := g.NodeByName(s.Dst)
		if !ok {
			return nil, fmt.Errorf("trace: sample %d: node %q not in topology %q", orig[i], s.Dst, g.Name())
		}
		if src.ID == dst.ID {
			return nil, fmt.Errorf("trace: sample %d: self-pair %q", orig[i], s.Src)
		}
		if s.Bps > 0 {
			live[pair{src.ID, dst.ID}] = s.Bps
		} else {
			delete(live, pair{src.ID, dst.ID})
		}
		if i+1 == len(samples) || samples[i+1].Time != s.Time {
			flush()
		}
	}
	return out, nil
}

// ParseDemandTrace reads the plain-text demand-trace format: one sample
// per line, "<time-sec> <src-node> <dst-node> <bps>", with '#' comments
// and blank lines ignored.
func ParseDemandTrace(data []byte) (*DemandTrace, error) {
	var t DemandTrace
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want \"time src dst bps\", got %q", lineNo, line)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", lineNo, fields[0])
		}
		bps, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad bps %q", lineNo, fields[3])
		}
		t.Samples = append(t.Samples, DemandSample{Time: at, Src: fields[1], Dst: fields[2], Bps: bps})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}
