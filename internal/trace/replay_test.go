package trace

import (
	"math"
	"reflect"
	"testing"

	"lowlat/internal/geo"
	"lowlat/internal/graph"
)

// replayGraph is a 3-node line a-b-c.
func replayGraph() *graph.Graph {
	b := graph.NewBuilder("replay-test")
	a := b.AddNode("a", geo.Point{})
	bb := b.AddNode("b", geo.Point{Lon: 1})
	c := b.AddNode("c", geo.Point{Lon: 2})
	b.AddBiLink(a, bb, 10e9, 0.001)
	b.AddBiLink(bb, c, 10e9, 0.001)
	return b.MustBuild()
}

func TestReplayEmptyTraceErrors(t *testing.T) {
	g := replayGraph()
	if _, err := (&DemandTrace{}).Matrices(g); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestReplayUnknownNodeErrors(t *testing.T) {
	g := replayGraph()
	dt := &DemandTrace{Samples: []DemandSample{
		{Time: 0, Src: "a", Dst: "zz", Bps: 1e9},
	}}
	_, err := dt.Matrices(g)
	if err == nil {
		t.Fatal("a sample naming a node absent from the topology must error")
	}
}

func TestReplaySelfPairErrors(t *testing.T) {
	g := replayGraph()
	dt := &DemandTrace{Samples: []DemandSample{
		{Time: 0, Src: "a", Dst: "a", Bps: 1e9},
	}}
	if _, err := dt.Matrices(g); err == nil {
		t.Fatal("self-pair samples must error")
	}
}

func TestReplayOutOfOrderTimestampsAreSorted(t *testing.T) {
	g := replayGraph()
	sorted := &DemandTrace{Samples: []DemandSample{
		{Time: 0, Src: "a", Dst: "c", Bps: 1e9},
		{Time: 30, Src: "b", Dst: "c", Bps: 2e9},
		{Time: 60, Src: "a", Dst: "c", Bps: 3e9},
	}}
	shuffled := &DemandTrace{Samples: []DemandSample{
		{Time: 60, Src: "a", Dst: "c", Bps: 3e9},
		{Time: 0, Src: "a", Dst: "c", Bps: 1e9},
		{Time: 30, Src: "b", Dst: "c", Bps: 2e9},
	}}
	want, err := sorted.Matrices(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shuffled.Matrices(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replay must be invariant to sample order")
	}
	if epochs := shuffled.Epochs(); !reflect.DeepEqual(epochs, []float64{0, 30, 60}) {
		t.Fatalf("epochs = %v, want [0 30 60]", epochs)
	}
}

func TestReplayCarriesForwardAndRetires(t *testing.T) {
	g := replayGraph()
	dt := &DemandTrace{Samples: []DemandSample{
		{Time: 0, Src: "a", Dst: "c", Bps: 1e9},
		{Time: 60, Src: "b", Dst: "c", Bps: 2e9},
		{Time: 120, Src: "a", Dst: "c", Bps: -1}, // retire a->c
	}}
	ms, err := dt.Matrices(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("matrices = %d, want 3", len(ms))
	}
	if ms[0].Len() != 1 || ms[0].TotalVolume() != 1e9 {
		t.Fatalf("epoch 0: %d aggregates, %v bps", ms[0].Len(), ms[0].TotalVolume())
	}
	// Epoch 1 carries a->c forward alongside the new b->c.
	if ms[1].Len() != 2 || math.Abs(ms[1].TotalVolume()-3e9) > 1 {
		t.Fatalf("epoch 1: %d aggregates, %v bps", ms[1].Len(), ms[1].TotalVolume())
	}
	// Epoch 2 retires a->c.
	if ms[2].Len() != 1 || ms[2].TotalVolume() != 2e9 {
		t.Fatalf("epoch 2: %d aggregates, %v bps", ms[2].Len(), ms[2].TotalVolume())
	}
	for i, m := range ms {
		if err := m.Validate(g); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
	}
}

func TestParseDemandTrace(t *testing.T) {
	data := []byte(`# demand trace
0   a c 1e9

60  b c 2e9
120 a c 0
`)
	dt, err := ParseDemandTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dt.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(dt.Samples))
	}
	if dt.Samples[1].Src != "b" || dt.Samples[1].Bps != 2e9 {
		t.Fatalf("sample 1 = %+v", dt.Samples[1])
	}
	for _, bad := range []string{"not a sample", "x a c 1e9", "0 a c fast"} {
		if _, err := ParseDemandTrace([]byte(bad)); err == nil {
			t.Fatalf("line %q must be rejected", bad)
		}
	}
}
