// Package trace synthesizes backbone traffic traces standing in for the
// CAIDA packet captures the paper analyzes (§4). The generator reproduces
// the two statistical properties the paper's headroom argument rests on:
//
//  1. minute-scale mean levels drift slowly (well under 10% per minute,
//     consistent with [22] and Figure 9), and
//  2. sub-second burst variability is large in absolute terms but its
//     per-minute standard deviation persists from one minute to the next
//     (Figure 10's tight clustering around x = y).
//
// Knobs expose both properties so tests can also violate them and show
// Algorithm 1 degrading — something the real traces cannot do.
package trace

import (
	"math"

	"lowlat/internal/stats"
)

// Config parameterizes a synthetic trace. Zero values take defaults that
// mimic the paper's description of the CAIDA links (1-3 Gb/s means on
// 10 Gb/s links).
type Config struct {
	Seed int64
	// Minutes is the trace duration (paper: 60-minute traces).
	Minutes int
	// BinsPerSecond is the measurement resolution (paper: per
	// millisecond, 1000). Lower it for cheaper tests.
	BinsPerSecond int
	// MeanBps is the starting mean level (default 2 Gb/s).
	MeanBps float64
	// DriftPerMinute is the relative standard deviation of the random
	// walk the minute-mean takes (default 0.025: ~2.5% per minute).
	DriftPerMinute float64
	// BurstStd is the sub-second standard deviation as a fraction of
	// the current mean (default 0.25).
	BurstStd float64
	// BurstStdJitter lets the burstiness itself wander slowly minute to
	// minute (default 0.05 relative).
	BurstStdJitter float64
	// BurstCorr is the AR(1) coefficient of the per-bin noise; close to
	// 1 yields temporally clumped bursts (default 0.9).
	BurstCorr float64
}

func (c Config) withDefaults() Config {
	if c.Minutes <= 0 {
		c.Minutes = 60
	}
	if c.BinsPerSecond <= 0 {
		c.BinsPerSecond = 1000
	}
	if c.MeanBps <= 0 {
		c.MeanBps = 2e9
	}
	if c.DriftPerMinute <= 0 {
		c.DriftPerMinute = 0.025
	}
	if c.BurstStd <= 0 {
		c.BurstStd = 0.25
	}
	if c.BurstStdJitter <= 0 {
		c.BurstStdJitter = 0.05
	}
	if c.BurstCorr <= 0 {
		c.BurstCorr = 0.9
	}
	return c
}

// Trace is a synthetic bitrate series.
type Trace struct {
	// Rates holds the bitrate (bits/sec) of each bin.
	Rates []float64
	// BinsPerSecond echoes the generation resolution.
	BinsPerSecond int
}

// BinsPerMinute returns the number of samples forming one minute.
func (t Trace) BinsPerMinute() int { return t.BinsPerSecond * 60 }

// Rebin aggregates the trace into coarser bins (e.g. 100 ms bins for the
// multiplexing checks), averaging rates within each bin.
func (t Trace) Rebin(binSec float64) []float64 {
	per := int(binSec * float64(t.BinsPerSecond))
	if per < 1 {
		per = 1
	}
	var out []float64
	for start := 0; start+per <= len(t.Rates); start += per {
		sum := 0.0
		for _, v := range t.Rates[start : start+per] {
			sum += v
		}
		out = append(out, sum/float64(per))
	}
	return out
}

// Generate builds a synthetic trace.
func Generate(cfg Config) Trace {
	cfg = cfg.withDefaults()
	rng := stats.Rng(cfg.Seed)

	binsPerMin := cfg.BinsPerSecond * 60
	total := cfg.Minutes * binsPerMin
	rates := make([]float64, total)

	mean := cfg.MeanBps
	burstStd := cfg.BurstStd
	ar := 0.0
	// Innovation std for the AR(1) process with stationary std 1.
	innovStd := sqrtOneMinusSq(cfg.BurstCorr)

	for minute := 0; minute < cfg.Minutes; minute++ {
		for b := 0; b < binsPerMin; b++ {
			ar = cfg.BurstCorr*ar + rng.NormFloat64()*innovStd
			v := mean * (1 + burstStd*ar)
			if v < 0 {
				v = 0
			}
			rates[minute*binsPerMin+b] = v
		}
		// Minute-scale evolution: mean drifts slowly; burstiness
		// wanders slightly (Figure 10's x=y persistence).
		mean *= 1 + rng.NormFloat64()*cfg.DriftPerMinute
		if mean < cfg.MeanBps*0.25 {
			mean = cfg.MeanBps * 0.25
		}
		if mean > cfg.MeanBps*4 {
			mean = cfg.MeanBps * 4
		}
		burstStd *= 1 + rng.NormFloat64()*cfg.BurstStdJitter
		if burstStd < cfg.BurstStd*0.5 {
			burstStd = cfg.BurstStd * 0.5
		}
		if burstStd > cfg.BurstStd*2 {
			burstStd = cfg.BurstStd * 2
		}
	}
	return Trace{Rates: rates, BinsPerSecond: cfg.BinsPerSecond}
}

func sqrtOneMinusSq(c float64) float64 {
	v := 1 - c*c
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// AggregateSeries derives a per-aggregate 100 ms measurement history from
// a seed, scaled so its mean matches meanBps: the input LDR's multiplexing
// checks consume. burstStd is relative to the mean; corr sets temporal
// clumping.
func AggregateSeries(seed int64, bins int, meanBps, burstStd, corr float64) []float64 {
	cfg := Config{
		Seed:          seed,
		Minutes:       1 + bins/600,
		BinsPerSecond: 10, // directly at 100ms resolution
		MeanBps:       meanBps,
		BurstStd:      burstStd,
		BurstCorr:     corr,
	}
	t := Generate(cfg)
	out := t.Rates
	if len(out) > bins {
		out = out[:bins]
	}
	return out
}
