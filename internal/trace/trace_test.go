package trace

import (
	"math"
	"testing"

	"lowlat/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	tr := Generate(Config{Seed: 1, Minutes: 5, BinsPerSecond: 100})
	if len(tr.Rates) != 5*60*100 {
		t.Fatalf("len = %d", len(tr.Rates))
	}
	if tr.BinsPerMinute() != 6000 {
		t.Fatalf("bins per minute = %d", tr.BinsPerMinute())
	}
	for i, v := range tr.Rates {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("rate[%d] = %v", i, v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 9, Minutes: 2, BinsPerSecond: 50})
	b := Generate(Config{Seed: 9, Minutes: 2, BinsPerSecond: 50})
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
	c := Generate(Config{Seed: 10, Minutes: 2, BinsPerSecond: 50})
	if a.Rates[0] == c.Rates[0] && a.Rates[100] == c.Rates[100] {
		t.Fatal("different seeds should differ")
	}
}

func TestMeanLevelRespected(t *testing.T) {
	tr := Generate(Config{Seed: 3, Minutes: 10, BinsPerSecond: 100, MeanBps: 2e9})
	mean, _ := stats.MeanStd(tr.Rates)
	if mean < 0.5e9 || mean > 8e9 {
		t.Fatalf("overall mean = %v, want within the clamp band around 2G", mean)
	}
}

func TestMinuteDriftIsSmall(t *testing.T) {
	// Consecutive minute means should rarely move more than 10%
	// (Figure 9 / the Google WAN observation in [22]).
	tr := Generate(Config{Seed: 5, Minutes: 40, BinsPerSecond: 50})
	per := tr.BinsPerMinute()
	var means []float64
	for s := 0; s+per <= len(tr.Rates); s += per {
		sum := 0.0
		for _, v := range tr.Rates[s : s+per] {
			sum += v
		}
		means = append(means, sum/float64(per))
	}
	big := 0
	for i := 1; i < len(means); i++ {
		if change := math.Abs(means[i]-means[i-1]) / means[i-1]; change > 0.10 {
			big++
		}
	}
	if frac := float64(big) / float64(len(means)-1); frac > 0.05 {
		t.Fatalf("minute means jump >10%% too often: %v", frac)
	}
}

func TestRebin(t *testing.T) {
	tr := Trace{Rates: []float64{1, 3, 5, 7, 9, 11}, BinsPerSecond: 2}
	// 1-second bins of 2 samples each.
	out := tr.Rebin(1)
	want := []float64{2, 6, 10}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	// Sub-bin rebin degenerates to identity.
	if got := tr.Rebin(0.0001); len(got) != 6 {
		t.Fatalf("identity rebin len = %d", len(got))
	}
}

func TestAggregateSeries(t *testing.T) {
	s := AggregateSeries(42, 600, 1e9, 0.3, 0.9)
	if len(s) != 600 {
		t.Fatalf("len = %d", len(s))
	}
	mean, std := stats.MeanStd(s)
	if mean < 0.3e9 || mean > 3e9 {
		t.Fatalf("mean = %v", mean)
	}
	if std <= 0 {
		t.Fatal("series should be variable")
	}
	s2 := AggregateSeries(42, 600, 1e9, 0.3, 0.9)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("AggregateSeries must be deterministic per seed")
		}
	}
}

func TestBurstCorrClumpsBursts(t *testing.T) {
	// Higher AR coefficient means neighboring bins are more correlated.
	corrOf := func(burstCorr float64) float64 {
		tr := Generate(Config{Seed: 7, Minutes: 4, BinsPerSecond: 100, BurstCorr: burstCorr})
		a := tr.Rates[:len(tr.Rates)-1]
		b := tr.Rates[1:]
		return stats.Correlation(a, b)
	}
	low := corrOf(0.2)
	high := corrOf(0.95)
	if high <= low {
		t.Fatalf("AR(1) knob broken: corr(0.95)=%v <= corr(0.2)=%v", high, low)
	}
	if high < 0.8 {
		t.Fatalf("high burst correlation should clump: %v", high)
	}
}
