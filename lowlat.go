package lowlat

import (
	"lowlat/internal/geo"
	"lowlat/internal/graph"
	"lowlat/internal/topo"
)

// This file is the topology half of the public facade. Everything under
// internal/ is reachable from here, so downstream importers never need (and
// cannot use) internal import paths.

// NodeID identifies a node (PoP) within a Graph.
type NodeID = graph.NodeID

// LinkID identifies a directed link within a Graph.
type LinkID = graph.LinkID

// Node is a PoP: a named point of presence with a geographic location.
type Node = graph.Node

// Link is a directed edge with capacity (bits/sec) and propagation delay
// (seconds).
type Link = graph.Link

// Graph is an immutable directed network topology.
type Graph = graph.Graph

// Path is a loop-free sequence of directed links with cached total delay.
type Path = graph.Path

// Builder accumulates nodes and links and produces an immutable Graph.
type Builder = graph.Builder

// Mask hides a subset of links or nodes from path computations without
// copying the graph.
type Mask = graph.Mask

// Point is a geographic coordinate (latitude, longitude in degrees).
type Point = geo.Point

// TopologyClass labels the structural family of a synthetic zoo network.
type TopologyClass = topo.Class

// ZooEntry is one synthetic stand-in network from the 116-network zoo,
// tagged with its structural class.
type ZooEntry = topo.Entry

// AddedLink records one link added by GrowTopology together with the LLPD
// it achieved.
type AddedLink = topo.AddedLink

// GrowConfig parameterizes GrowTopology.
type GrowConfig = topo.GrowConfig

// NewBuilder returns a Builder for a topology with the given name.
func NewBuilder(name string) *Builder { return graph.NewBuilder(name) }

// NewPath builds a Path over g from a link sequence, computing its delay.
func NewPath(g *Graph, links []LinkID) Path { return graph.NewPath(g, links) }

// CloneTopology returns a Builder pre-populated with g's nodes and links,
// for deriving modified topologies.
func CloneTopology(g *Graph) *Builder { return graph.Clone(g) }

// WithScaledCapacities returns a copy of g with every link capacity
// multiplied by factor. Scaling capacities down by (1-h) is how the
// headroom dial of §4 is implemented.
func WithScaledCapacities(g *Graph, factor float64) *Graph {
	return graph.WithScaledCapacities(g, factor)
}

// Zoo returns the 116-network synthetic topology zoo that stands in for
// the paper's Internet Topology Zoo selection. Entries are ordered by
// name; construction is deterministic.
func Zoo() []ZooEntry { return topo.Zoo() }

// NetworkByName resolves a zoo entry (or one of the named networks below)
// by name.
func NetworkByName(name string) (ZooEntry, bool) { return topo.ByName(name) }

// GTSLike returns the synthetic stand-in for GTS's Central Europe network
// (Figure 2): a dense national grid with high LLPD.
func GTSLike() *Graph { return topo.GTSLike() }

// CogentLike returns the synthetic stand-in for Cogent: a two-continent
// network with diverse intercontinental paths.
func CogentLike() *Graph { return topo.CogentLike() }

// GoogleLike returns the synthetic stand-in for Google's global WAN [24],
// tuned to the highest LLPD in the study (Figure 19).
func GoogleLike() *Graph { return topo.GoogleLike() }

// GrowTopology adds links to g one at a time, each time choosing the
// candidate that most increases LLPD, until the link count has grown by
// cfg.GrowFraction (the §8 "does routing influence topology?" experiment,
// Figure 20). It returns the grown topology and the links added.
func GrowTopology(g *Graph, cfg GrowConfig) (*Graph, []AddedLink) {
	return topo.Grow(g, cfg)
}

// MarshalTopology serializes g to the library's plain-text topology format.
func MarshalTopology(g *Graph) []byte { return topo.Marshal(g) }

// UnmarshalTopology parses the plain-text topology format.
func UnmarshalTopology(data []byte) (*Graph, error) { return topo.Unmarshal(data) }

// Synthetic generators, exported so users can build controlled topologies
// like the ones the zoo is made of.

// Grid returns a w x h two-dimensional grid with the given node spacing,
// the structure the paper identifies as high-LLPD (GTS-like).
func Grid(name string, w, h int, spacingKm, capacity float64) *Graph {
	return topo.Grid(name, w, h, spacingKm, capacity)
}

// Ring returns an n-node ring, the paper's canonical mid-LLPD structure.
func Ring(name string, n int, radiusKm, capacity float64) *Graph {
	return topo.Ring(name, n, radiusKm, capacity)
}

// Tree returns a balanced tree, the paper's canonical low-LLPD structure.
func Tree(name string, branching, depth int, spacingKm, capacity float64) *Graph {
	return topo.Tree(name, branching, depth, spacingKm, capacity)
}

// Clique returns a full mesh, the overlay-network shape whose APA curves
// are the horizontal lines of Figure 1.
func Clique(name string, n int, radiusKm, capacity float64) *Graph {
	return topo.Clique(name, n, radiusKm, capacity)
}

// RandomGeo returns a Waxman-style random geographic graph.
func RandomGeo(name string, n int, widthKm, heightKm, alpha, beta, capacity float64, seed int64) *Graph {
	return topo.RandomGeo(name, n, widthKm, heightKm, alpha, beta, capacity, seed)
}

// MultiRegion returns a multi-continent topology: dense regional meshes
// joined by long-haul links (Cogent-like).
func MultiRegion(name string, regions, perRegion int, regionSpanKm, interDistKm float64,
	interLinks int, regionalCap, longHaulCap float64, seed int64) *Graph {
	return topo.MultiRegion(name, regions, perRegion, regionSpanKm, interDistKm,
		interLinks, regionalCap, longHaulCap, seed)
}
