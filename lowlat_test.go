package lowlat

import (
	"testing"

	"lowlat/internal/experiments"
	"lowlat/internal/topo"
)

// TestExperimentRegistryComplete pins the deliverable: one driver per
// results figure in the paper.
func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig3", "fig4", "fig7", "fig8", "fig9",
		"fig10", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig_dynamics"}
	got := experiments.Names()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestZooMatchesPaperScale pins the dataset: 116 networks like the paper's
// Topology Zoo selection, plus the out-of-zoo Google-like network.
func TestZooMatchesPaperScale(t *testing.T) {
	if n := len(topo.Zoo()); n != 116 {
		t.Fatalf("zoo size = %d, want 116", n)
	}
	if _, ok := topo.ByName("google-like"); !ok {
		t.Fatal("google-like must resolve")
	}
}
