package lowlat

import (
	"io"

	"lowlat/internal/experiments"
	"lowlat/internal/graph"
	"lowlat/internal/metrics"
)

// This file exposes the §2 topology metrics and the per-figure experiment
// drivers.

// APAConfig parameterizes alternate-path availability: the path-stretch
// limit (default 1.4) and capacity-viability rules.
type APAConfig = metrics.APAConfig

// PairAPA returns the alternate path availability for one PoP pair: the
// fraction of links on its shortest path that can be routed around within
// the stretch limit by capacity-viable alternates (§2).
func PairAPA(g *graph.Graph, src, dst graph.NodeID, cfg APAConfig) (float64, bool) {
	return metrics.PairAPA(g, src, dst, cfg)
}

// APADistribution returns APA for every ordered PoP pair; its CDF is one
// curve of Figure 1.
func APADistribution(g *graph.Graph, cfg APAConfig) []float64 {
	return metrics.APADistribution(g, cfg)
}

// LLPD returns the topology's low-latency path diversity: the fraction of
// PoP pairs with APA >= 0.7 (§2).
func LLPD(g *graph.Graph, cfg APAConfig) float64 {
	return metrics.LLPD(g, cfg)
}

// ExperimentConfig scopes an experiment run: matrices per topology, seed,
// and an optional network filter.
type ExperimentConfig = experiments.Config

// ExperimentNetwork is one zoo network as the experiment drivers see it.
type ExperimentNetwork = experiments.Network

// Experiments lists the available per-figure experiment drivers (fig1,
// fig3, fig4, ... fig20).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's results figures, writing
// the same rows/series the paper plots to w.
func RunExperiment(name string, cfg ExperimentConfig, w io.Writer) error {
	return experiments.Run(name, cfg, w)
}

// RunAllExperiments regenerates every results figure in order.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	return experiments.RunAll(cfg, w)
}
