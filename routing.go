package lowlat

import (
	"lowlat/internal/graph"
	"lowlat/internal/routing"
	"lowlat/internal/tm"
)

// This file is the routing half of the public facade: the Scheme interface,
// the Placement type with its congestion and stretch metrics, and the five
// schemes the paper evaluates (§3) plus the link-based baseline (§5).

// Scheme places a traffic matrix onto a topology. All of the paper's
// routing systems satisfy it.
type Scheme = routing.Scheme

// Placement is the output of a Scheme: per-aggregate path fractions plus
// derived link loads, congestion and latency-stretch metrics.
type Placement = routing.Placement

// PathAlloc is one aggregate's traffic split over one path.
type PathAlloc = routing.PathAlloc

// SolveStats reports LP-solver effort for the optimization-based schemes.
type SolveStats = routing.SolveStats

// ShortestPath is delay-proportional shortest-path routing (OSPF/IS-IS
// with costs proportional to delay), the scheme of Figure 3.
type ShortestPath = routing.SP

// B4 is the greedy waterfill allocator of Jain et al. as described in §3.
// Set Headroom to reserve link capacity on the first pass (§6).
type B4 = routing.B4

// MinMax is TeXCP/MATE-style traffic engineering: minimize peak link
// utilization with total latency as tie-break. K = 10 reproduces the
// paper's MinMaxK10; StretchBound enables the §8 delay-bounded variant.
type MinMax = routing.MinMax

// MPLSTE is MPLS-TE auto-bandwidth: aggregates are placed one at a time,
// each on its shortest path with room left, in descending-volume order.
// §3 notes its pathologies match B4's.
type MPLSTE = routing.MPLSTE

// LatencyOpt is the latency-optimal placement: the Figure 12 LP over
// iteratively grown path sets (Figure 13) with the §4 headroom dial.
type LatencyOpt = routing.LatencyOpt

// LinkBasedResult carries the link-based multi-commodity-flow baseline's
// optimum, used to cross-check the path-based solver (Figure 15).
type LinkBasedResult = routing.LinkBasedResult

// NewShortestPath returns the shortest-path scheme.
func NewShortestPath() Scheme { return routing.SP{} }

// NewB4 returns the B4 scheme with the given reserved headroom fraction
// (0 for the paper's §3 configuration).
func NewB4(headroom float64) Scheme { return routing.B4{Headroom: headroom} }

// NewMinMax returns unrestricted MinMax with latency tie-break.
func NewMinMax() Scheme { return routing.MinMax{} }

// NewMinMaxK returns MinMax restricted to each aggregate's k shortest
// paths (the paper evaluates k = 10).
func NewMinMaxK(k int) Scheme { return routing.MinMax{K: k} }

// NewMPLSTE returns the MPLS-TE auto-bandwidth scheme.
func NewMPLSTE() Scheme { return routing.MPLSTE{} }

// NewLatencyOptimal returns the latency-optimal scheme with the given
// headroom fraction (0 reproduces Figure 4(a)).
func NewLatencyOptimal(headroom float64) Scheme {
	return routing.LatencyOpt{Headroom: headroom}
}

// Schemes returns the paper's four §3 routing systems plus the
// latency-optimal placement, in the order of Figure 4.
func Schemes() []Scheme {
	return []Scheme{
		routing.LatencyOpt{},
		routing.B4{},
		routing.MinMax{},
		routing.MinMax{K: 10},
		routing.SP{},
	}
}

// LinkBasedLatencyOpt solves the link-based multi-commodity-flow
// formulation of the latency optimization (the §5 baseline that is ~100x
// slower than the path-based approach).
func LinkBasedLatencyOpt(g *graph.Graph, m *tm.Matrix, headroom float64) (*LinkBasedResult, error) {
	return routing.LinkBasedLatencyOpt(g, m, headroom)
}
