#!/usr/bin/env sh
# Runs the CI benchmark subset (the landscape sweep, the dynamics
# timelines, and the predictive-vs-exact place pair that tracks the fast
# path's speedup claim) once each and converts the `go test -bench`
# output into a flat JSON object mapping benchmark name -> ns/op,
# written to $1 (default BENCH_ci.json). CI archives the file on every
# push so the repository accumulates a perf trajectory; `make bench`
# produces the same file locally, and each PR checks in a snapshot as
# BENCH_pr<N>.json.
set -eu

out="${1:-BENCH_ci.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipe into tee: POSIX sh has no pipefail, and the bench exit status
# must fail the job. PredictivePlace/ExactPlace are matched by their full
# suffixes so AblationB4Place (a different, much heavier family) stays
# out of this subset.
go test -run NONE -bench 'Landscape|Dynamics|PredictivePlace|ExactPlace' -benchtime 1x ./... > "$tmp"

# The histogram/windowed record hot paths are nanoseconds, so
# -benchtime 1x would measure clock noise; give them real iterations in
# a second, cheap run and merge the rows before the JSON conversion. The
# budgets they track: HistogramRecord and WindowedRecord < 100 ns/op
# (the PR8/PR9 Record budgets); WindowRotate is the slow path recorders
# never block on, tracked for trajectory only.
go test -run NONE -bench 'HistogramRecord|WindowedRecord' -benchtime 200000x ./internal/obs >> "$tmp"
go test -run NONE -bench 'WindowRotate' -benchtime 20000x ./internal/obs >> "$tmp"
cat "$tmp"

awk '
  $1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
    if (count++) printf ",\n"
    printf "  \"%s\": %s", name, $3
  }
  BEGIN { printf "{\n" }
  END   { printf "\n}\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"
