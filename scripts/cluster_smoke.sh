#!/usr/bin/env sh
# Cluster smoke test: seed two disjoint result stores through sweeps,
# boot two lowlatd replicas on ephemeral ports, drive `lowlat query
# -cluster` and a farmed-out `lowlat sweep -cluster` against the pair,
# then kill one replica and verify the consistent-hash ring reroutes its
# keys to the survivor with the CLI still answering. `make cluster-smoke`
# runs this locally; CI's short job runs it after the unit suites.
set -eu

store_a="${1:-.clusterstore}-a"
store_b="${1:-.clusterstore}-b"
store_sweep="${1:-.clusterstore}-sweep"
log_a="$(mktemp)"
log_b="$(mktemp)"
bindir="$(mktemp -d)"
trap 'rm -f "$log_a" "$log_b"; rm -rf "$bindir"; [ -z "${pid_a:-}" ] || kill "$pid_a" 2>/dev/null || true; [ -z "${pid_b:-}" ] || kill "$pid_b" 2>/dev/null || true' EXIT

rm -rf "$store_a" "$store_b" "$store_sweep"
go build -o "$bindir/lowlatd" ./cmd/lowlatd
go build -o "$bindir/lowlat" ./cmd/lowlat

"$bindir/lowlat" sweep -store "$store_a" -grid "nets=star-6;seeds=1;schemes=sp"
"$bindir/lowlat" sweep -store "$store_b" -grid "nets=ring-8;seeds=1;schemes=sp"

"$bindir/lowlatd" -store "$store_a" -addr 127.0.0.1:0 -workers 1 > "$log_a" 2>&1 &
pid_a=$!
"$bindir/lowlatd" -store "$store_b" -addr 127.0.0.1:0 -workers 1 > "$log_b" 2>&1 &
pid_b=$!

wait_addr() { # logfile pid -> base url on stdout
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's/.*\(http:\/\/[0-9.:]*\).*/\1/p' "$1" | head -n 1)"
        [ -n "$base" ] && break
        kill -0 "$2" 2>/dev/null || { echo "lowlatd died:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "lowlatd never printed its address:" >&2; cat "$1" >&2; exit 1; }
    echo "$base"
}
base_a="$(wait_addr "$log_a" "$pid_a")"
base_b="$(wait_addr "$log_b" "$pid_b")"
cluster="$base_a,$base_b"
echo "cluster-smoke: replicas at $cluster"

fail() { echo "cluster-smoke: FAIL: $1"; cat "$log_a" "$log_b"; exit 1; }

# The ring's merged query sees both shards (1 cell each).
"$bindir/lowlat" query -cluster "$cluster" -scheme sp \
    | grep -q "2 of 2 stored cells matched" || fail "cluster query"

# Export through the cluster: CSV header + 2 rows, remote or not.
[ "$("$bindir/lowlat" export -cluster "$cluster" -format csv | wc -l)" = "3" ] || fail "cluster export"

# A sweep farms its missing placements out through the ring and still
# checkpoints locally (4 cells: 2 nets x 2 seeds, 2 already on replicas).
"$bindir/lowlat" sweep -store "$store_sweep" -cluster "$cluster" \
    -grid "nets=star-6,ring-8;seeds=1,2;schemes=sp" -workers 1 \
    | grep -q " 0 failed" || fail "farmed-out sweep"
"$bindir/lowlat" query -store "$store_sweep" \
    | grep -q "4 of 4 stored cells matched" || fail "local checkpoint after farm-out"

# Kill one replica: the ring must reroute its keys to the survivor and
# the CLI must keep answering with zero failed requests.
kill -TERM "$pid_b"
wait "$pid_b" 2>/dev/null || true
pid_b=""
"$bindir/lowlat" query -cluster "$cluster" -scheme sp \
    | grep -q "stored cells matched" || fail "query after replica kill"
"$bindir/lowlat" sweep -store "$store_sweep" -cluster "$cluster" \
    -grid "nets=star-6,ring-8;seeds=3;schemes=sp" -workers 1 \
    | grep -q " 0 failed" || fail "rerouted sweep after replica kill"

kill -TERM "$pid_a"
wait "$pid_a" || fail "replica A exit status"
grep -q "shut down cleanly" "$log_a" || fail "clean shutdown"
pid_a=""
echo "cluster-smoke: OK"
