#!/usr/bin/env sh
# Cluster smoke test in two acts. Act one (sharding, R=1): seed two
# disjoint result stores through sweeps, boot two lowlatd replicas on
# ephemeral ports, drive `lowlat query -cluster` and a farmed-out
# `lowlat sweep -cluster` against the pair, then kill one replica and
# verify the consistent-hash ring reroutes its keys to the survivor with
# the CLI still answering. Act two (replication, R=2): boot three
# replicas, seed cells through a replicated ring so every cell lands on
# its key's two owners, kill one replica mid-run (zero failed lookups),
# restart it over an EMPTY store, and verify `lowlat heal` rebuilds it —
# a second heal must find nothing left to copy and the export through
# the ring must be byte-identical to the pre-kill export.
# `make cluster-smoke` runs this locally; CI's short job runs it after
# the unit suites.
set -eu

store_a="${1:-.clusterstore}-a"
store_b="${1:-.clusterstore}-b"
store_sweep="${1:-.clusterstore}-sweep"
store_r1="${1:-.clusterstore}-r1"
store_r2="${1:-.clusterstore}-r2"
store_r3="${1:-.clusterstore}-r3"
store_rsweep="${1:-.clusterstore}-rsweep"
log_a="$(mktemp)"
log_b="$(mktemp)"
log_r1="$(mktemp)"
log_r2="$(mktemp)"
log_r3="$(mktemp)"
bindir="$(mktemp -d)"
trap 'rm -f "$log_a" "$log_b" "$log_r1" "$log_r2" "$log_r3"; rm -rf "$bindir"; for p in "${pid_a:-}" "${pid_b:-}" "${pid_r1:-}" "${pid_r2:-}" "${pid_r3:-}"; do [ -z "$p" ] || kill "$p" 2>/dev/null || true; done' EXIT

rm -rf "$store_a" "$store_b" "$store_sweep" "$store_r1" "$store_r2" "$store_r3" "$store_rsweep"
go build -o "$bindir/lowlatd" ./cmd/lowlatd
go build -o "$bindir/lowlat" ./cmd/lowlat

"$bindir/lowlat" sweep -store "$store_a" -grid "nets=star-6;seeds=1;schemes=sp"
"$bindir/lowlat" sweep -store "$store_b" -grid "nets=ring-8;seeds=1;schemes=sp"

"$bindir/lowlatd" -store "$store_a" -addr 127.0.0.1:0 -workers 1 > "$log_a" 2>&1 &
pid_a=$!
"$bindir/lowlatd" -store "$store_b" -addr 127.0.0.1:0 -workers 1 > "$log_b" 2>&1 &
pid_b=$!

wait_addr() { # logfile pid -> base url on stdout
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's/.*\(http:\/\/[0-9.:]*\).*/\1/p' "$1" | head -n 1)"
        [ -n "$base" ] && break
        kill -0 "$2" 2>/dev/null || { echo "lowlatd died:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "lowlatd never printed its address:" >&2; cat "$1" >&2; exit 1; }
    echo "$base"
}
base_a="$(wait_addr "$log_a" "$pid_a")"
base_b="$(wait_addr "$log_b" "$pid_b")"
cluster="$base_a,$base_b"
echo "cluster-smoke: replicas at $cluster"

fail() { echo "cluster-smoke: FAIL: $1"; cat "$log_a" "$log_b"; exit 1; }

# The ring's merged query sees both shards (1 cell each).
"$bindir/lowlat" query -cluster "$cluster" -scheme sp \
    | grep -q "2 of 2 stored cells matched" || fail "cluster query"

# Export through the cluster: CSV header + 2 rows, remote or not.
[ "$("$bindir/lowlat" export -cluster "$cluster" -format csv | wc -l)" = "3" ] || fail "cluster export"

# A sweep farms its missing placements out through the ring and still
# checkpoints locally (4 cells: 2 nets x 2 seeds, 2 already on replicas).
"$bindir/lowlat" sweep -store "$store_sweep" -cluster "$cluster" \
    -grid "nets=star-6,ring-8;seeds=1,2;schemes=sp" -workers 1 \
    | grep -q " 0 failed" || fail "farmed-out sweep"
"$bindir/lowlat" query -store "$store_sweep" \
    | grep -q "4 of 4 stored cells matched" || fail "local checkpoint after farm-out"

# Kill one replica: the ring must reroute its keys to the survivor and
# the CLI must keep answering with zero failed requests.
kill -TERM "$pid_b"
wait "$pid_b" 2>/dev/null || true
pid_b=""
"$bindir/lowlat" query -cluster "$cluster" -scheme sp \
    | grep -q "stored cells matched" || fail "query after replica kill"
"$bindir/lowlat" sweep -store "$store_sweep" -cluster "$cluster" \
    -grid "nets=star-6,ring-8;seeds=3;schemes=sp" -workers 1 \
    | grep -q " 0 failed" || fail "rerouted sweep after replica kill"

kill -TERM "$pid_a"
wait "$pid_a" || fail "replica A exit status"
grep -q "shut down cleanly" "$log_a" || fail "clean shutdown"
pid_a=""
echo "cluster-smoke: act one (sharding) OK"

# ---- Act two: replication (R=2) over three replicas. ----

rfail() { echo "cluster-smoke: FAIL: $1"; cat "$log_r1" "$log_r2" "$log_r3"; exit 1; }

# digest_count BASE -> the replica's stored-cell count via /v1/digest.
digest_count() {
    curl -fsS "$1/v1/digest" | tr -d ' \t\n' | sed 's/.*"count"://;s/[,}].*//'
}

start_replica() { # storedir logfile addr -> pid via $started_pid, url via $started_url
    "$bindir/lowlatd" -store "$1" -addr "$3" -workers 1 > "$2" 2>&1 &
    started_pid=$!
    started_url="$(wait_addr "$2" "$started_pid")"
}

start_replica "$store_r1" "$log_r1" 127.0.0.1:0; pid_r1=$started_pid; base_r1=$started_url
start_replica "$store_r2" "$log_r2" 127.0.0.1:0; pid_r2=$started_pid; base_r2=$started_url
start_replica "$store_r3" "$log_r3" 127.0.0.1:0; pid_r3=$started_pid; base_r3=$started_url
rcluster="$base_r1,$base_r2,$base_r3"
echo "cluster-smoke: R=2 replicas at $rcluster"

# Seed 4 cells through the replicated ring: each cell lands on both of
# its key's ring owners (plus the computing replica's own store when
# that differs), so the three stores hold 8..12 copies between them —
# the exact split depends on the ephemeral-port ring layout.
"$bindir/lowlat" sweep -store "$store_rsweep" -cluster "$rcluster" -replicas 2 \
    -grid "nets=star-6,ring-8;seeds=1,2;schemes=sp" -workers 1 \
    | grep -q " 0 failed" || rfail "replicated seed sweep"
total=$(( $(digest_count "$base_r1") + $(digest_count "$base_r2") + $(digest_count "$base_r3") ))
{ [ "$total" -ge 8 ] && [ "$total" -le 12 ]; } || rfail "expected 8..12 replicated copies across 3 stores, found $total"
"$bindir/lowlat" export -cluster "$rcluster" -replicas 2 -format csv > "$bindir/export_before.csv"
[ "$(wc -l < "$bindir/export_before.csv")" = "5" ] || rfail "replicated export"

# The health plane answers on every replica: a healthy daemon rolls up
# to ok and serves its event journal with a cursor.
curl -fsS "$base_r1/v1/health" | grep -q '"status": "ok"' || rfail "replica health report"
curl -fsS "$base_r1/v1/events?since=0" | grep -q '"next_since"' || rfail "replica events cursor"

# Kill one replica mid-run: every cell still has a live owner, so reads
# through the replicated ring must keep answering with zero failures.
# (The "of N" total counts copies on live replicas and depends on how
# the ephemeral-port ring split ownership; the 4 matched cells do not.)
kill -TERM "$pid_r3"
wait "$pid_r3" 2>/dev/null || true
pid_r3=""
"$bindir/lowlat" query -cluster "$rcluster" -replicas 2 -scheme sp \
    | grep -q "4 of [0-9]* stored cells matched" || rfail "query with a dead replica"
[ "$("$bindir/lowlat" export -cluster "$rcluster" -replicas 2 -format csv | wc -l)" = "5" ] \
    || rfail "export with a dead replica"

# Restart the dead replica over an EMPTY store — a lost disk — on its
# old address (ownership is a pure function of the cluster URLs), then
# heal: the sweep exchanges key inventories and copies every cell the
# rebuilt replica owns back onto it. A second heal proves convergence
# (nothing left to copy), and the export through the ring must be
# byte-identical to the pre-kill export — zero lost cells.
rm -rf "$store_r3"
start_replica "$store_r3" "$log_r3" "${base_r3#http://}"; pid_r3=$started_pid
[ "$started_url" = "$base_r3" ] || rfail "rebuilt replica came back on $started_url, want $base_r3"
[ "$(digest_count "$base_r3")" = "0" ] || rfail "rebuilt replica should start empty"
"$bindir/lowlat" heal -cluster "$rcluster" -replicas 2 \
    | grep -q " 0 failed" || rfail "heal after rebuild"
total=$(( $(digest_count "$base_r1") + $(digest_count "$base_r2") + $(digest_count "$base_r3") ))
{ [ "$total" -ge 8 ] && [ "$total" -le 12 ]; } || rfail "expected 8..12 copies after heal, found $total"
"$bindir/lowlat" heal -cluster "$rcluster" -replicas 2 \
    | grep -Eq "(0 healed, 0 drained, 0 failed|already converged)" \
    || rfail "second heal should have nothing to copy"
"$bindir/lowlat" export -cluster "$rcluster" -replicas 2 -format csv > "$bindir/export_after.csv"
cmp -s "$bindir/export_before.csv" "$bindir/export_after.csv" \
    || rfail "export after rebuild+heal differs from the pre-kill export"

for p in "$pid_r1" "$pid_r2" "$pid_r3"; do kill -TERM "$p"; wait "$p" || rfail "replica exit status"; done
grep -q "shut down cleanly" "$log_r3" || rfail "clean replicated shutdown"
pid_r1=""; pid_r2=""; pid_r3=""
echo "cluster-smoke: OK"
