#!/usr/bin/env sh
# CI error gate for the predictive fast path: sweep a small grid across a
# load line, train interpolation surfaces on alternating load points, and
# predict the held-out points the exact solver just computed. The gate
# fails when any held-out error exceeds the pinned bound — if surface
# fitting regresses (a distance-metric bug, a roughness-gauge bug, a
# training-order bug), this trips before the change merges.
#
# The bound is deliberately pinned here, not passed through from the
# environment: loosening it must be a reviewed diff of this file.
# `make predict-gate` runs this locally; CI's short job runs it after the
# unit suites.
set -eu

store="${1:-.predictstore}"

# Two tiny nets, two schemes, five load points; one gate invocation per
# matrix seed. Seeds run separately on purpose: the surface index
# averages across seeds (the landscape is a distribution over matrix
# draws), so a multi-seed gate against one seed's exact metrics would
# measure matrix-draw variance, not fitting error. Per-seed lines
# isolate what this gate pins — interpolation accuracy. Both seeds share
# the store, so reruns reuse every solved cell.
grid="nets=star-6,ring-8;schemes=sp,minmax"
loads="0.5,0.55,0.6,0.65,0.7"
bound="0.05"

rm -rf "$store"
for seed in 1 2; do
    go run ./cmd/lowlat predict \
        -store "$store" \
        -grid "$grid;seeds=$seed" \
        -loads "$loads" \
        -bound "$bound" \
        -workers 1
done

echo "predict_gate: OK (bound $bound)"
