#!/usr/bin/env sh
# Serving smoke test: seed a tiny result store through a sweep, boot
# lowlatd on an ephemeral port, and drive the HTTP surface end to end
# with curl — query, a stored place, an on-demand computed place, a
# cached repeat, stats — then shut the daemon down with SIGTERM and
# require a clean exit. `make serve-smoke` runs this locally; CI's short
# job runs it after the unit suites.
set -eu

store="${1:-.servestore}"
log="$(mktemp)"
bindir="$(mktemp -d)"
bin="$bindir/lowlatd"
trap 'rm -f "$log"; rm -rf "$bindir"; [ -z "${pid:-}" ] || kill "$pid" 2>/dev/null || true' EXIT

rm -rf "$store"
go run ./cmd/lowlat sweep -store "$store" -grid "nets=star-6;seeds=1;schemes=sp"
go build -o "$bin" ./cmd/lowlatd

"$bin" -store "$store" -addr 127.0.0.1:0 -workers 1 > "$log" 2>&1 &
pid=$!

# Wait for the daemon to print its bound address.
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's/.*\(http:\/\/[0-9.:]*\).*/\1/p' "$log" | head -n 1)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "lowlatd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "lowlatd never printed its address:"; cat "$log"; exit 1; }
echo "serve-smoke: daemon at $base"

fail() { echo "serve-smoke: FAIL: $1"; cat "$log"; exit 1; }

curl -fsS "$base/healthz" > /dev/null || fail "healthz"
curl -fsS "$base/v1/query?scheme=sp" | grep -q '"count": 1' || fail "query"

# The swept cell serves from the store; a new scheme computes on demand;
# the repeat is a cache hit.
body='{"net":"star-6","seed":1,"scheme":"minmax"}'
curl -fsS "$base/v1/place" -d '{"net":"star-6","seed":1,"scheme":"sp"}' \
    | grep -q '"source": "store"' || fail "stored place"
curl -fsS "$base/v1/place" -d "$body" | grep -q '"source": "computed"' || fail "computed place"
curl -fsS "$base/v1/place" -d "$body" | grep -q '"source": "cache"' || fail "cached place"
curl -fsS "$base/v1/summary" | grep -q '"classes"' || fail "summary"
curl -fsS "$base/v1/stats" | grep -q '"computed": 1' || fail "stats"

# The observability surface: /v1/stats carries per-stage latency
# quantiles, /metrics speaks Prometheus text format (scalar counters plus
# the stage histograms — the computed place above recorded a solve), and
# /v1/slow answers even when empty.
curl -fsS "$base/v1/stats" | grep -q '"stages"' || fail "stats stages"
metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -q '^lowlat_place_requests_total 3$' || fail "metrics place counter"
echo "$metrics" | grep -q '^lowlat_computed_total 1$' || fail "metrics computed counter"
echo "$metrics" | grep -q '# TYPE lowlat_stage_latency_seconds histogram' || fail "metrics histogram type"
echo "$metrics" | grep -q 'lowlat_stage_latency_seconds_count{stage="solve"}' || fail "metrics solve histogram"
echo "$metrics" | grep -q 'lowlat_stage_latency_seconds_bucket{stage="http_place",le="+Inf"}' || fail "metrics http histogram"
echo "$metrics" | grep -q '^# HELP lowlat_place_requests_total ' || fail "metrics HELP line"
curl -fsS "$base/v1/slow" | grep -q '"total"' || fail "slow ring"

# The health plane: /v1/health rolls the daemon up to ok (a -slo-less
# daemon has no objectives to burn), /v1/events serves the journal
# cursor, and a second /metrics scrape after more traffic must move the
# counters forward — monotonicity is what makes them rate()-able.
curl -fsS "$base/v1/health" | grep -q '"status": "ok"' || fail "health report"
curl -fsS "$base/v1/events?since=0" | grep -q '"next_since"' || fail "events cursor"
counter() { echo "$1" | sed -n 's/^lowlat_place_requests_total \([0-9]*\)$/\1/p'; }
curl -fsS "$base/v1/place" -d "$body" > /dev/null || fail "place before rescrape"
metrics2="$(curl -fsS "$base/metrics")"
first="$(counter "$metrics")"
second="$(counter "$metrics2")"
[ "$second" -gt "$first" ] || fail "metrics not monotonic: place counter $first -> $second"

kill -TERM "$pid"
wait "$pid" || fail "daemon exit status"
grep -q "shut down cleanly" "$log" || fail "clean shutdown message"
pid=""

# The computed cell persisted: the store now has both.
go run ./cmd/lowlat query -store "$store" | grep -q "2 of 2 stored cells matched" || fail "persisted cell"
echo "serve-smoke: OK"
