package lowlat

import (
	"context"
	"net"

	"lowlat/internal/obs"
	"lowlat/internal/serve"
	"lowlat/internal/store"
)

// This file is the serving half of the public facade: the query daemon
// that turns a result store into an always-on HTTP service, and the typed
// client for talking to one. The batch layers fill the store (RunSweep,
// the figure drivers); Serve answers questions about it online and
// computes missing cells on demand.

// ServeOptions tunes a query server: engine width, the in-flight
// computation bound behind 429 backpressure, the LRU size, the shutdown
// drain timeout.
type ServeOptions = serve.Options

// ServeStats is the /v1/stats counter block.
type ServeStats = serve.Stats

// QueryServer is the HTTP query-serving daemon over one result store.
type QueryServer = serve.Server

// ServeClient is the typed client for a running daemon.
type ServeClient = serve.Client

// PlaceRequest asks a daemon for one scenario cell by coordinates.
type PlaceRequest = serve.PlaceRequest

// PlaceResponse is the daemon's answer: the cell plus its source
// ("cache", "store" or "computed").
type PlaceResponse = serve.PlaceResponse

// LandscapeSummary is the per-class CDF aggregate /v1/summary returns.
type LandscapeSummary = serve.Summary

// StageSnapshot is one stage's latency-histogram snapshot as it appears
// under "stages" in /v1/stats: count, sum, max and the p50/p90/p99
// quantiles in nanoseconds, plus the sparse buckets that make snapshots
// mergeable across daemons without losing counts.
type StageSnapshot = obs.Snapshot

// SlowRequest is one entry in a daemon's /v1/slow ring: a request that
// crossed the server's slow threshold, with its ID, endpoint, source,
// duration and per-stage timings.
type SlowRequest = obs.SlowEntry

// RequestIDHeader is the HTTP header carrying a request's trace ID
// ("X-Request-ID"): send one to a daemon and the same ID comes back in
// the response, appears in the daemon's request log, and propagates to
// every downstream replica the request touches.
const RequestIDHeader = obs.RequestIDHeader

// StageWindow is one stage's rolling-window view as it appears under
// "windows" in /v1/stats: the window name ("1m", "5m", "1h"), the span
// actually covered, the observation rate, and the merged distribution
// of the window's sub-slots.
type StageWindow = obs.WindowSnapshot

// SLOObjective is one parsed service-level objective — a latency
// quantile or error-rate bound over a rolling window, declared with the
// daemon's -slo flag or parsed with ParseObjectives and passed in
// ServeOptions.Objectives.
type SLOObjective = obs.Objective

// SLOStatus is one objective's evaluated state on /v1/health: ok, warn
// or page, with the observed value, the two burn rates the state was
// decided on, and the budget remaining.
type SLOStatus = obs.SLOStatus

// HealthReport is the /v1/health roll-up: an ok/degraded/critical
// status, one reason line per problem, the down replicas on cluster
// fronts, and one SLOStatus per declared objective. The endpoint
// answers 503 only when critical.
type HealthReport = serve.HealthReport

// ClusterEvent is one entry in a daemon's bounded state-transition
// journal — replica down/up, hint queued/drained, heal sweep, SLO and
// health changes — served oldest-first with a cursor by /v1/events.
type ClusterEvent = obs.Event

// WatchSnapshot is one /v1/watch server-sent event: the moment's
// HealthReport, the rolling endpoint windows, and the journal entries
// recorded since the previous snapshot. `lowlat watch` renders the
// stream as a live terminal view.
type WatchSnapshot = serve.WatchEvent

// ParseObjectives parses a comma- or semicolon-separated objective list
// in the -slo flag grammar ("http_place p99 < 50ms over 5m, error_rate
// < 1% over 1h") into the objectives ServeOptions.Objectives accepts.
func ParseObjectives(s string) ([]SLOObjective, error) { return obs.ParseObjectives(s) }

// NewQueryServer builds a query server over an open result store (opened
// with OpenResultStore, or read-only with OpenResultStoreReadOnly — a
// read-only daemon serves stored cells but refuses to compute).
func NewQueryServer(st *ResultStore, opts ServeOptions) *QueryServer {
	return serve.New(st, opts)
}

// Serve mounts the store at addr and serves until ctx is cancelled, then
// drains in-flight requests and returns. notify, when non-nil, receives
// the bound address before serving starts (how callers learn the port
// when addr ends in ":0").
func Serve(ctx context.Context, st *ResultStore, addr string, opts ServeOptions, notify func(net.Addr)) error {
	return serve.New(st, opts).ListenAndServe(ctx, addr, notify)
}

// NewServeClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewServeClient(baseURL string) *ServeClient { return serve.NewClient(baseURL) }

// OpenResultStoreReadOnly opens an existing result store without ever
// writing to it, so any number of readers (query CLIs, read-only
// daemons) can run beside one writing process.
func OpenResultStoreReadOnly(dir string) (*ResultStore, error) { return store.OpenReadOnly(dir) }

// SummarizeResults aggregates a result slice into per-class metric CDFs
// — the same computation the daemon's /v1/summary endpoint serves.
func SummarizeResults(results []CellResult, points int) *LandscapeSummary {
	return serve.Summarize(results, points)
}
