package lowlat

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestServeFacade drives the serving facade end to end: sweep a cell into
// a store, serve it on an ephemeral port, query and place through the
// typed client (one stored hit, one on-demand computation), summarize,
// read the stats, and shut down cleanly.
func TestServeFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placements")
	}
	st, err := OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	grid, err := ParseSweepGrid("nets=star-6;seeds=1;schemes=sp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(context.Background(), st, grid, SweepOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bound := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, st, "127.0.0.1:0", ServeOptions{Workers: 1}, func(a net.Addr) { bound <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-bound:
	case err := <-served:
		t.Fatalf("Serve exited early: %v", err)
	}
	c := NewServeClient("http://" + addr.String())

	results, err := c.Query(ctx, SweepFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("query returned %d cells, want 1", len(results))
	}

	hit, err := c.Place(ctx, PlaceRequest{Net: "star-6", Seed: 1, Scheme: "sp"})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Source != "store" {
		t.Fatalf("swept cell source = %q, want store", hit.Source)
	}
	computed, err := c.Place(ctx, PlaceRequest{Net: "star-6", Seed: 1, Scheme: "minmax"})
	if err != nil {
		t.Fatal(err)
	}
	if computed.Source != "computed" {
		t.Fatalf("new cell source = %q, want computed", computed.Source)
	}

	sum, err := c.Summary(ctx, SweepFilter{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 2 || len(sum.Classes) != 1 {
		t.Fatalf("summary = %+v, want 2 cells in 1 class", sum)
	}
	if local := SummarizeResults(QuerySweep(st, SweepFilter{}), 3); local.Cells != sum.Cells {
		t.Fatalf("local summary (%d cells) != served summary (%d cells)", local.Cells, sum.Cells)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoreCells != 2 || stats.Computed != 1 || stats.MemoHits < 1 {
		t.Fatalf("stats = %+v, want 2 cells, 1 computed, >=1 memo hits", stats)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v after clean shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
