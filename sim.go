package lowlat

import (
	"lowlat/internal/graph"
	"lowlat/internal/sim"
	"lowlat/internal/tm"
)

// This file exposes the fluid placement simulator and the closed-loop
// control-cycle driver: the validation layer for the paper's headroom and
// queueing claims.

// SimConfig parameterizes a fluid simulation run.
type SimConfig = sim.Config

// SimResult is the outcome of a simulation run: per-link queue/utilization
// statistics and per-aggregate worst-case queueing delay.
type SimResult = sim.Result

// SimLinkStats summarizes one link's simulated behavior.
type SimLinkStats = sim.LinkStats

// AggregateSpec describes one aggregate's traffic process for closed-loop
// runs: a drifting mean with correlated sub-second bursts.
type AggregateSpec = sim.AggregateSpec

// ClosedLoopConfig drives the full measure -> optimize -> install cycle of
// Figure 11 over simulated minutes.
type ClosedLoopConfig = sim.ClosedLoopConfig

// ClosedLoopResult aggregates a closed-loop run.
type ClosedLoopResult = sim.ClosedLoopResult

// MinuteStats records one simulated control-cycle minute.
type MinuteStats = sim.MinuteStats

// Simulate plays per-bin aggregate bitrates over a placement's paths and
// reports per-link transient queues — the end-to-end check that a
// placement's headroom suffices. traffic[i] holds aggregate i's bits/sec
// per bin.
func Simulate(p *Placement, traffic [][]float64, cfg SimConfig) (*SimResult, error) {
	return sim.Run(p, traffic, cfg)
}

// RunClosedLoop simulates multiple minutes of the centralized control
// cycle on g: each minute the controller (LDR, or cfg.Scheme when set)
// re-optimizes from the previous minute's measurements and the resulting
// placement carries the next minute's (drifted) traffic.
func RunClosedLoop(g *graph.Graph, specs []AggregateSpec, cfg ClosedLoopConfig) (*ClosedLoopResult, error) {
	return sim.RunClosedLoop(g, specs, cfg)
}

// SpecsFromMatrix derives closed-loop traffic processes from a traffic
// matrix: volumes become base means with deterministic per-aggregate
// burstiness.
func SpecsFromMatrix(m *tm.Matrix, seed int64) []AggregateSpec {
	return sim.SpecsFromMatrix(m, seed)
}
