package lowlat

import "lowlat/internal/stats"

// Small statistical helpers exposed for consumers of experiment output:
// the CDFs the paper plots and the correlation behind Figure 10.

// CDF is an empirical cumulative distribution over float64 samples.
type CDF = stats.CDF

// CDFPoint is one (value, cumulative fraction) point of a sampled CDF.
type CDFPoint = stats.Point

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) *CDF { return stats.NewCDF(samples) }

// Correlation returns the Pearson correlation coefficient of two
// equal-length series.
func Correlation(xs, ys []float64) float64 { return stats.Correlation(xs, ys) }

// Link capacity tiers used throughout the synthetic zoo.
const (
	// Gbps is one gigabit per second in the library's bits/sec units.
	Gbps = 1e9
	// Cap10G, Cap40G and Cap100G are the backbone capacity tiers the
	// synthetic zoo provisions links with.
	Cap10G  = 10 * Gbps
	Cap40G  = 40 * Gbps
	Cap100G = 100 * Gbps
)
