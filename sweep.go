package lowlat

import (
	"context"
	"io"

	"lowlat/internal/store"
	"lowlat/internal/sweep"
)

// This file is the persistence half of the public facade: the
// content-addressed scenario-result store and the resumable sweep
// orchestrator built on it. A sweep writes each finished (network,
// matrix, scheme) cell into the store as it lands, so an interrupted run
// rerun against the same store computes only the missing cells, and the
// accumulated results can be sliced into CSV/JSON at any time.

// ResultStore is the append-only, sharded, crash-tolerant on-disk store
// of scenario results, indexed in memory and keyed by content (graph
// fingerprint, traffic-matrix digest, scheme name and configuration).
type ResultStore = store.Store

// CellKey is the content-derived address of one scenario cell.
type CellKey = store.CellKey

// CellMetrics is the stored scalar summary of one placement.
type CellMetrics = store.Metrics

// CellResult is one stored cell: key, human labels, metrics.
type CellResult = store.Result

// SweepGrid declares a sweep's cross-product: topologies x matrix seeds x
// schemes x headroom points.
type SweepGrid = sweep.Grid

// SweepOptions tunes RunSweep (worker pool width, forced recomputation,
// progress hooks).
type SweepOptions = sweep.Options

// SweepReport counts a sweep's planned, reused, computed and failed
// cells.
type SweepReport = sweep.Report

// SweepFilter selects a slice of a result store for query and export.
type SweepFilter = sweep.Filter

// OpenResultStore opens (creating if needed) a result store directory and
// rebuilds its index; lines torn by an interrupted writer are skipped and
// counted on the returned store's Skipped method.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// ScenarioKey computes the store key of one scenario cell, for callers
// that want to look their own placements up or store them alongside sweep
// results.
func ScenarioKey(g *Graph, m *Matrix, scheme Scheme) CellKey {
	return store.KeyFor(g, m, scheme)
}

// ParseSweepGrid parses the compact grid syntax
// ("nets=gts-like,ring-12;seeds=1,2;schemes=sp,ldr;headrooms=0,0.11").
func ParseSweepGrid(spec string) (SweepGrid, error) { return sweep.ParseGrid(spec) }

// RunSweep expands the grid, skips every cell st already holds, places
// the missing cells across a bounded worker pool and checkpoints each
// result into st the moment it lands. Killing the process mid-sweep loses
// at most the cells still in flight: the next RunSweep against the same
// store resumes where the last one stopped.
func RunSweep(ctx context.Context, st *ResultStore, grid SweepGrid, opts SweepOptions) (*SweepReport, error) {
	return sweep.Run(ctx, st, grid, opts)
}

// QuerySweep returns the store's cells matching the filter, in the
// store's deterministic order.
func QuerySweep(st *ResultStore, f SweepFilter) []CellResult { return sweep.Query(st, f) }

// ExportSweep writes the filtered slice of the store as "csv" or "json".
// Equal store contents export byte-identical bytes, however (and in
// however many interrupted runs) they were computed.
func ExportSweep(w io.Writer, st *ResultStore, f SweepFilter, format string) error {
	return sweep.Export(w, st, f, format)
}
