package lowlat

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRunSweepFacade drives the persistence facade end to end: run a tiny
// sweep, resume it (pure reuse), query a slice, export it.
func TestRunSweepFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placements")
	}
	st, err := OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	grid, err := ParseSweepGrid("nets=star-6;seeds=1;schemes=sp,minmax")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSweep(context.Background(), st, grid, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 2 || rep.Reused != 0 {
		t.Fatalf("first sweep report = %+v, want 2 computed", rep)
	}
	rep, err = RunSweep(context.Background(), st, grid, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 0 || rep.Reused != 2 {
		t.Fatalf("resumed sweep report = %+v, want 2 reused", rep)
	}

	if got := QuerySweep(st, SweepFilter{Scheme: "sp"}); len(got) != 1 {
		t.Fatalf("query returned %d cells, want 1", len(got))
	}
	var buf bytes.Buffer
	if err := ExportSweep(&buf, st, SweepFilter{}, "csv"); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 3 {
		t.Fatalf("export:\n%s", buf.String())
	}

	// ScenarioKey matches what the sweep stored.
	e, ok := NetworkByName("star-6")
	if !ok {
		t.Fatal("star-6 missing")
	}
	g := e.Build()
	res, err := GenerateTraffic(g, TrafficConfig{Seed: 1, TargetMaxUtil: 1 / 1.3, Locality: 1})
	if err != nil {
		t.Fatal(err)
	}
	key := ScenarioKey(g, res.Matrix, NewShortestPath())
	if _, ok := st.Get(key); !ok {
		t.Fatalf("ScenarioKey %v not found in sweep store", key)
	}
}
