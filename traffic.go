package lowlat

import (
	"lowlat/internal/graph"
	"lowlat/internal/predict"
	"lowlat/internal/tm"
	"lowlat/internal/tmgen"
	"lowlat/internal/trace"
)

// This file is the demand half of the public facade: traffic matrices and
// their gravity-model generator (§3), synthetic backbone traces, and the
// Algorithm 1 rate predictor (§4).

// Aggregate is a PoP-to-PoP traffic aggregate: endpoints, mean volume
// (bits/sec), flow count n_a, and an optional priority weight (§8).
type Aggregate = tm.Aggregate

// Matrix is a traffic matrix: a set of aggregates over one topology.
type Matrix = tm.Matrix

// TrafficConfig parameterizes gravity-model traffic generation: Zipf PoP
// masses, the paper's locality parameter ℓ, and the min-cut load target.
type TrafficConfig = tmgen.Config

// TrafficResult is a generated matrix plus calibration details (the scale
// factor applied and the MinMax-optimal utilization achieved).
type TrafficResult = tmgen.Result

// TraceConfig parameterizes synthetic per-millisecond backbone traces,
// the stand-in for the paper's CAIDA Tier-1 captures.
type TraceConfig = trace.Config

// Trace is a synthetic bitrate series with helpers for re-binning.
type Trace = trace.Trace

// Predictor implements the paper's Algorithm 1: predictions rise
// immediately with measured traffic (x1.10 hedge) and decay slowly (x0.98)
// when it falls.
type Predictor = predict.Predictor

// NewMatrix builds a traffic matrix from aggregates.
func NewMatrix(aggs []Aggregate) *Matrix { return tm.New(aggs) }

// GenerateTraffic synthesizes one gravity-model traffic matrix for g,
// scaled so the MinMax-optimal peak utilization hits cfg.TargetMaxUtil
// (default 0.77: traffic fits until it grows 30%, the paper's standard
// load).
func GenerateTraffic(g *graph.Graph, cfg TrafficConfig) (*TrafficResult, error) {
	return tmgen.Generate(g, cfg)
}

// GenerateTrafficSet synthesizes count independent matrices (the paper
// uses 100 per topology), varying cfg.Seed.
func GenerateTrafficSet(g *graph.Graph, cfg TrafficConfig, count int) ([]*Matrix, error) {
	return tmgen.GenerateSet(g, cfg, count)
}

// GenerateTrace synthesizes a backbone-like bitrate trace with
// minute-scale mean drift and persistent sub-second burstiness, the two
// properties Figures 9 and 10 establish for real Tier-1 links.
func GenerateTrace(cfg TraceConfig) Trace { return trace.Generate(cfg) }

// AggregateSeries synthesizes one aggregate's per-bin bitrate series with
// the given mean, relative burst standard deviation, and AR(1) burst
// correlation — the measurement stream an ingress router would report.
func AggregateSeries(seed int64, bins int, meanBps, burstStd, corr float64) []float64 {
	return trace.AggregateSeries(seed, bins, meanBps, burstStd, corr)
}

// MinuteMeans reduces a bitrate series to per-minute means.
func MinuteMeans(series []float64, binsPerMinute int) []float64 {
	return predict.MinuteMeans(series, binsPerMinute)
}

// MinuteStds reduces a bitrate series to per-minute standard deviations
// (the quantity scattered in Figure 10).
func MinuteStds(series []float64, binsPerMinute int) []float64 {
	return predict.MinuteStds(series, binsPerMinute)
}

// EvaluateTrace runs Algorithm 1 over per-minute means and returns
// measured/predicted ratios (the CDF of Figure 9).
func EvaluateTrace(minuteMeans []float64) []float64 {
	return predict.EvaluateTrace(minuteMeans)
}

// MarshalTraffic renders a traffic matrix in the library's plain-text
// format, naming nodes via g.
func MarshalTraffic(g *graph.Graph, m *Matrix) []byte { return tm.Marshal(g, m) }

// UnmarshalTraffic parses the text format produced by MarshalTraffic.
func UnmarshalTraffic(g *graph.Graph, data []byte) (*Matrix, error) {
	return tm.Unmarshal(g, data)
}
